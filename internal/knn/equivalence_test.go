package knn

import (
	"runtime"
	"testing"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/statutil"
)

func equivWorkerCounts() []int { return []int{1, 2, 7, runtime.NumCPU()} }

func randPoints(seed int64, r, c int) *linalg.Matrix {
	rng := statutil.NewRNG(seed, "knn-equiv")
	m := linalg.NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNearestParallelMatchesSerial(t *testing.T) {
	for _, metric := range []Distance{Euclidean, Cosine} {
		points := randPoints(3, 409, 6)
		q := randPoints(4, 1, 6).Row(0)

		defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
		want, err := Nearest(points, q, 5, metric)
		if err != nil {
			t.Fatal(err)
		}

		for _, w := range equivWorkerCounts() {
			parallel.SetMaxProcs(w)
			got, err := Nearest(points, q, 5, metric)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("metric=%v workers=%d: %d neighbors, serial %d", metric, w, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("metric=%v workers=%d: neighbor %d = %+v, serial %+v", metric, w, i, got[i], want[i])
				}
			}
		}
		parallel.SetMaxProcs(0)
	}
}

func TestSearchMatchesNearestLoop(t *testing.T) {
	points := randPoints(5, 301, 8)
	queries := randPoints(6, 37, 8)
	const k = 4

	// Serial oracle: Nearest per query at one worker.
	defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
	want := make([][]Neighbor, queries.Rows)
	for i := 0; i < queries.Rows; i++ {
		nbs, err := Nearest(points, queries.Row(i), k, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = nbs
	}

	for _, w := range equivWorkerCounts() {
		parallel.SetMaxProcs(w)
		got, err := Search(points, queries, k, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		for qi := range got {
			if len(got[qi]) != len(want[qi]) {
				t.Fatalf("workers=%d query %d: %d neighbors, want %d", w, qi, len(got[qi]), len(want[qi]))
			}
			for i := range got[qi] {
				if got[qi][i] != want[qi][i] {
					t.Fatalf("workers=%d query %d neighbor %d = %+v, serial %+v", w, qi, i, got[qi][i], want[qi][i])
				}
			}
		}
	}
	parallel.SetMaxProcs(0)
}

func TestSearchRejectsBadInput(t *testing.T) {
	points := randPoints(7, 10, 3)
	queries := randPoints(8, 2, 4)
	if _, err := Search(points, queries, 3, Euclidean); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	if _, err := Search(points, randPoints(9, 2, 3), 0, Euclidean); err == nil {
		t.Fatal("k=0 not rejected")
	}
	if _, err := Search(linalg.NewMatrix(0, 3), randPoints(10, 2, 3), 3, Euclidean); err == nil {
		t.Fatal("empty point set not rejected")
	}
}

// TestTieBreakByIndexWithDuplicateRows is the regression test for
// nondeterministic tie-breaking: with deliberately duplicated training
// rows, equal-distance neighbors must come back ordered by index at every
// worker count, so parallel partitioning can never reorder downstream
// predictions (rank weighting makes order observable).
func TestTieBreakByIndexWithDuplicateRows(t *testing.T) {
	// Rows 2, 5, 9, 11 are identical, all at distance 0 from the query;
	// rows 0 and 7 are identical at a larger distance.
	base := [][]float64{
		{4, 4}, // 0: dup far pair
		{9, 9},
		{1, 2}, // 2: dup of 5, 9, 11
		{8, 1},
		{7, 7},
		{1, 2}, // 5
		{6, 0},
		{4, 4}, // 7: dup of 0
		{9, 1},
		{1, 2}, // 9
		{5, 5},
		{1, 2}, // 11
	}
	points := linalg.FromRows(base)
	q := []float64{1, 2}

	wantIdx := []int{2, 5, 9, 11, 0, 7}
	for _, w := range equivWorkerCounts() {
		defer parallel.SetMaxProcs(parallel.SetMaxProcs(w))
		nbs, err := Nearest(points, q, 6, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		for i, nb := range nbs {
			if nb.Index != wantIdx[i] {
				t.Fatalf("workers=%d: neighbor %d has index %d, want %d (ties must break by index)", w, i, nb.Index, wantIdx[i])
			}
		}
		// The batch path must agree with the single-query path.
		res, err := Search(points, linalg.FromRows([][]float64{q}), 6, Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		for i, nb := range res[0] {
			if nb.Index != wantIdx[i] {
				t.Fatalf("workers=%d: Search neighbor %d has index %d, want %d", w, i, nb.Index, wantIdx[i])
			}
		}
		parallel.SetMaxProcs(0)
	}
}
