package knn

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/statutil"
)

// The oracle suite proves the KD-tree index EXACT: for every supported
// metric, point-cloud shape, k, and worker count, Index.Nearest/Search must
// return bit-identical (distance, index) neighbor sets to the flat scan —
// same values, same total order, NaN-last. It runs under -race in CI at
// worker counts {1, 2, 7, NumCPU}.

// cloud generates a point cloud of a given pathology. Every generator is
// deterministic in (seed, n, dim).
type cloud struct {
	name string
	gen  func(seed int64, n, dim int) *linalg.Matrix
}

func clouds() []cloud {
	return []cloud{
		{"uniform", func(seed int64, n, dim int) *linalg.Matrix {
			rng := statutil.NewRNG(seed, "oracle-uniform")
			m := linalg.NewMatrix(n, dim)
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
			return m
		}},
		{"duplicates", func(seed int64, n, dim int) *linalg.Matrix {
			// Only a handful of distinct rows: the template-workload shape,
			// where the (distance, index) tie-break carries the ordering.
			rng := statutil.NewRNG(seed, "oracle-dup")
			distinct := 3
			base := linalg.NewMatrix(distinct, dim)
			for i := range base.Data {
				base.Data[i] = rng.NormFloat64()
			}
			m := linalg.NewMatrix(n, dim)
			for i := 0; i < n; i++ {
				copy(m.Row(i), base.Row(rng.Intn(distinct)))
			}
			return m
		}},
		{"colinear", func(seed int64, n, dim int) *linalg.Matrix {
			// Degenerate cluster: every point on one line through the origin,
			// so most splitting axes have zero spread.
			rng := statutil.NewRNG(seed, "oracle-colinear")
			dir := make([]float64, dim)
			for j := range dir {
				dir[j] = rng.NormFloat64()
			}
			m := linalg.NewMatrix(n, dim)
			for i := 0; i < n; i++ {
				t := rng.NormFloat64()
				for j := 0; j < dim; j++ {
					m.Row(i)[j] = t * dir[j]
				}
			}
			return m
		}},
		{"clustered", func(seed int64, n, dim int) *linalg.Matrix {
			rng := statutil.NewRNG(seed, "oracle-cluster")
			centers := linalg.NewMatrix(4, dim)
			for i := range centers.Data {
				centers.Data[i] = 10 * rng.NormFloat64()
			}
			m := linalg.NewMatrix(n, dim)
			for i := 0; i < n; i++ {
				c := centers.Row(rng.Intn(4))
				for j := 0; j < dim; j++ {
					m.Row(i)[j] = c[j] + 0.1*rng.NormFloat64()
				}
			}
			return m
		}},
		{"poisoned", func(seed int64, n, dim int) *linalg.Matrix {
			// Degenerate rows among ordinary ones: NaN coordinates, ±Inf,
			// huge magnitudes past the tree's overflow gate, exact zeros
			// (zero-norm under Cosine). These become stragglers the index
			// must still rank exactly like the flat scan (NaN-last).
			rng := statutil.NewRNG(seed, "oracle-poison")
			m := linalg.NewMatrix(n, dim)
			for i := range m.Data {
				m.Data[i] = rng.NormFloat64()
			}
			for i := 0; i < n; i++ {
				switch i % 7 {
				case 1:
					m.Row(i)[rng.Intn(dim)] = math.NaN()
				case 3:
					m.Row(i)[rng.Intn(dim)] = math.Inf(1 - 2*(i%2))
				case 4:
					m.Row(i)[rng.Intn(dim)] = 1e200
				case 5:
					for j := 0; j < dim; j++ {
						m.Row(i)[j] = 0
					}
				}
			}
			return m
		}},
	}
}

// oracleQueries builds query rows exercising every search path: ordinary,
// coincident with training points, far away, zero, and non-finite (the
// per-query flat fallback).
func oracleQueries(seed int64, points *linalg.Matrix) *linalg.Matrix {
	rng := statutil.NewRNG(seed, "oracle-query")
	dim := points.Cols
	qs := linalg.NewMatrix(8, dim)
	for j := 0; j < dim; j++ {
		qs.Row(0)[j] = rng.NormFloat64()             // ordinary
		qs.Row(2)[j] = 100 + 10*rng.NormFloat64()    // far outside the cloud
		qs.Row(3)[j] = 0                             // zero (cosine fallback)
		qs.Row(4)[j] = rng.NormFloat64()             // NaN-poisoned below
		qs.Row(5)[j] = 1e-30 * rng.NormFloat64()     // tiny magnitudes
		qs.Row(6)[j] = rng.NormFloat64() * 1e160     // past the overflow gate
		qs.Row(7)[j] = math.Abs(rng.NormFloat64())   // positive orthant
	}
	copy(qs.Row(1), points.Row(points.Rows/2)) // exact duplicate of a point
	qs.Row(4)[dim-1] = math.NaN()
	return qs
}

// mustEqualNeighbors asserts bit-identical neighbor sets: same length, and
// per position the same index and the same distance bits (NaN == NaN).
func mustEqualNeighbors(t *testing.T, ctx string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, oracle has %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].Index != want[i].Index ||
			math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
			t.Fatalf("%s: neighbor %d = {%d %v}, oracle {%d %v}",
				ctx, i, got[i].Index, got[i].Distance, want[i].Index, want[i].Distance)
		}
	}
}

// TestIndexOracle is the headline exactness proof: randomized point clouds
// across sizes, dimensions, pathologies, and both metrics; tree results
// must be bit-identical to the flat scan for k ∈ {1, 3, 7, N}, at every
// worker count.
func TestIndexOracle(t *testing.T) {
	dims := []int{1, 2, 3, 8, 15}
	sizes := []int{1, 5, 63, 64, 257, 600}
	workers := []int{1, 2, 7, runtime.NumCPU()}
	defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))

	seed := int64(100)
	for _, cl := range clouds() {
		for _, metric := range []Distance{Euclidean, Cosine} {
			for _, n := range sizes {
				for _, dim := range dims {
					if n > 100 && dim > 8 {
						continue // keep the grid affordable; big×wide is covered at 8
					}
					seed++
					points := cl.gen(seed, n, dim)
					queries := oracleQueries(seed, points)
					// Tiny MinPoints/LeafSize force real trees even on small
					// clouds; the default config path is covered separately.
					ix := NewIndexWith(points, metric, IndexConfig{MinPoints: 1, LeafSize: 3})
					for _, k := range []int{1, 3, 7, n} {
						for qi := 0; qi < queries.Rows; qi++ {
							q := queries.Row(qi)
							want, err := Nearest(points, q, k, metric)
							if err != nil {
								t.Fatal(err)
							}
							got, err := ix.Nearest(q, k)
							if err != nil {
								t.Fatal(err)
							}
							ctx := fmt.Sprintf("cloud=%s metric=%v n=%d dim=%d k=%d query=%d", cl.name, metric, n, dim, k, qi)
							mustEqualNeighbors(t, ctx, got, want)
						}
					}
					// Batch path at every worker count, k = 3.
					want, err := Search(points, queries, 3, metric)
					if err != nil {
						t.Fatal(err)
					}
					for _, w := range workers {
						parallel.SetMaxProcs(w)
						got, err := ix.Search(queries, 3)
						if err != nil {
							t.Fatal(err)
						}
						for qi := range got {
							ctx := fmt.Sprintf("cloud=%s metric=%v n=%d dim=%d workers=%d query=%d", cl.name, metric, n, dim, w, qi)
							mustEqualNeighbors(t, ctx, got[qi], want[qi])
						}
					}
					parallel.SetMaxProcs(1)
				}
			}
		}
	}
}

// TestIndexOracleDefaultConfig exercises the production configuration
// (MinPoints 64, leaf 16) at a size where the tree actually builds, plus
// one below the threshold where every search must take the flat fallback.
func TestIndexOracleDefaultConfig(t *testing.T) {
	for _, metric := range []Distance{Euclidean, Cosine} {
		for _, n := range []int{63, 64, 1000} {
			points := clouds()[0].gen(int64(7000+n), n, 12)
			ix := NewIndex(points, metric)
			if wantFlat := n < DefaultIndexMinPoints; ix.Flat() != wantFlat {
				t.Fatalf("n=%d: Flat()=%v, want %v", n, ix.Flat(), wantFlat)
			}
			queries := oracleQueries(int64(8000+n), points)
			for qi := 0; qi < queries.Rows; qi++ {
				q := queries.Row(qi)
				want, err := Nearest(points, q, 3, metric)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ix.Nearest(q, 3)
				if err != nil {
					t.Fatal(err)
				}
				mustEqualNeighbors(t, fmt.Sprintf("metric=%v n=%d query=%d", metric, n, qi), got, want)
			}
		}
	}
}

// TestIndexOracleWeightings closes the loop to predictions: identical
// neighbor sets must combine into bit-identical prediction vectors under
// every weighting scheme.
func TestIndexOracleWeightings(t *testing.T) {
	points := clouds()[1].gen(42, 200, 6) // duplicates: order-sensitive under RankWeight
	values := clouds()[0].gen(43, 200, 4)
	queries := oracleQueries(44, points)
	for _, metric := range []Distance{Euclidean, Cosine} {
		ix := NewIndexWith(points, metric, IndexConfig{MinPoints: 1, LeafSize: 4})
		for qi := 0; qi < queries.Rows; qi++ {
			q := queries.Row(qi)
			want, err := Nearest(points, q, 5, metric)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.Nearest(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []Weighting{EqualWeight, RankWeight, DistanceWeight} {
				vw := Combine(values, want, w)
				vg := Combine(values, got, w)
				for j := range vw {
					if math.Float64bits(vw[j]) != math.Float64bits(vg[j]) {
						t.Fatalf("metric=%v weighting=%v query=%d: combined[%d] = %v, oracle %v", metric, w, qi, j, vg[j], vw[j])
					}
				}
			}
		}
	}
}

// TestIndexErrorParity: the index must reject bad inputs with the same
// sentinel errors as the flat scan.
func TestIndexErrorParity(t *testing.T) {
	points := clouds()[0].gen(9, 80, 3)
	ix := NewIndex(points, Euclidean)
	if _, err := ix.Nearest([]float64{1, 2}, 3); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	if _, err := ix.Nearest([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("k=0 not rejected")
	}
	empty := NewIndex(linalg.NewMatrix(0, 3), Euclidean)
	if _, err := empty.Nearest([]float64{1, 2, 3}, 3); err == nil {
		t.Fatal("empty point set not rejected")
	}
	if _, err := ix.Search(linalg.NewMatrix(2, 4), 3); err == nil {
		t.Fatal("batch dimension mismatch not rejected")
	}
}

// TestIndexStats sanity-checks the introspection surface the serving tier
// and the lifecycle tests rely on.
func TestIndexStats(t *testing.T) {
	points := clouds()[0].gen(11, 300, 8)
	ix := NewIndex(points, Euclidean)
	st := ix.Stats()
	if st.Flat || st.Nodes == 0 || st.TreePoints != 300 || st.Points != 300 || st.Stragglers != 0 {
		t.Fatalf("unexpected tree stats: %+v", st)
	}
	q := oracleQueries(12, points).Row(0)
	for i := 0; i < 5; i++ {
		if _, err := ix.Nearest(q, 3); err != nil {
			t.Fatal(err)
		}
	}
	st = ix.Stats()
	if st.Searches != 5 || st.FlatSearches != 0 {
		t.Fatalf("searches=%d flat=%d, want 5/0", st.Searches, st.FlatSearches)
	}
	if st.PointsScored <= 0 || st.PointsScored >= 5*300 {
		t.Fatalf("PointsScored=%d: tree search should score fewer than all %d candidates", st.PointsScored, 5*300)
	}
	// A NaN query is answered exactly, via the per-query flat fallback.
	nanq := make([]float64, 8)
	nanq[3] = math.NaN()
	if _, err := ix.Nearest(nanq, 3); err != nil {
		t.Fatal(err)
	}
	if st = ix.Stats(); st.FlatSearches != 1 {
		t.Fatalf("FlatSearches=%d after NaN query, want 1", st.FlatSearches)
	}
	// Below the size threshold the whole index is flat.
	small := NewIndex(clouds()[0].gen(13, 10, 4), Euclidean)
	if st = small.Stats(); !st.Flat || st.FlatReason == "" || st.Nodes != 0 {
		t.Fatalf("small index should be flat with a reason: %+v", st)
	}
}

// TestNaNTieBreakTotalOrder pins the completed total order: multiple
// NaN-distance rows sort last AND among themselves by ascending index, on
// both the flat and tree paths.
func TestNaNTieBreakTotalOrder(t *testing.T) {
	rows := [][]float64{
		{1, 1}, {math.NaN(), 0}, {2, 2}, {math.NaN(), 5}, {0.5, 0.5}, {math.NaN(), 1},
	}
	points := linalg.FromRows(rows)
	q := []float64{0, 0}
	wantIdx := []int{4, 0, 2, 1, 3, 5} // finite ascending, then NaNs by index
	flat, err := Nearest(points, q, 6, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndexWith(points, Euclidean, IndexConfig{MinPoints: 1, LeafSize: 2})
	tree, err := ix.Nearest(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range wantIdx {
		if flat[i].Index != want {
			t.Fatalf("flat neighbor %d has index %d, want %d", i, flat[i].Index, want)
		}
		if tree[i].Index != want {
			t.Fatalf("tree neighbor %d has index %d, want %d", i, tree[i].Index, want)
		}
	}
}

// TestCosineDistanceToMatchesCosineDistance is the regression guard for the
// hoisted query norm: precomputing Norm(q) must not change a single bit.
func TestCosineDistanceToMatchesCosineDistance(t *testing.T) {
	rng := statutil.NewRNG(21, "cosine-hoist")
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(16)
		a := make([]float64, dim)
		b := make([]float64, dim)
		for j := range a {
			a[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
			b[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(40)-20))
		}
		switch trial % 5 {
		case 1:
			for j := range a {
				a[j] = 0
			}
		case 2:
			for j := range b {
				b[j] = 0
			}
		case 3:
			a[rng.Intn(dim)] = math.NaN()
		}
		want := linalg.CosineDistance(a, b)
		got := linalg.CosineDistanceTo(a, b, linalg.Norm(b))
		if math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("trial %d: CosineDistanceTo=%v, CosineDistance=%v", trial, got, want)
		}
	}
}
