// KD-tree index over the projected training points. The paper's Fig. 7
// prediction step is a kNN lookup in the ≤15-dimensional KCCA query
// projection; the flat scan in Nearest/Search is O(N·rank) per query, which
// grows linearly with the training window. An Index is built once per model
// generation at retrain-install time, is immutable afterwards (so serving
// reads are lock-free, matching the atomic hot-swap discipline of
// core.SlidingPredictor and the shard slots), and answers the same queries
// in roughly O(log N) for the low-dimensional projections it is built for.
//
// The index is EXACT, not approximate: for every supported input it returns
// bit-identical (distance, index) neighbor sets to the flat scan, including
// the total (distance, index) tie-break order with NaN-last semantics. That
// guarantee rests on three design rules:
//
//  1. Candidate distances are computed by the same linalg calls on the same
//     original rows as the flat scan (for Cosine, the unit-normalized copies
//     steer the tree descent but never produce a reported distance), so every
//     distance the caller sees is the same float64 the scan would produce.
//  2. Pruning bounds are slackened by margins (indexSlackRel/indexSlackAbs)
//     orders of magnitude larger than the worst-case floating-point error of
//     a distance evaluation at the supported dimensionality, so a subtree is
//     only skipped when no point in it can enter the result under the total
//     order — equal-distance points are never pruned (strict inequality), so
//     index tie-breaks survive.
//  3. Points the tree geometry cannot represent (non-finite or huge
//     coordinates, zero-norm rows under Cosine) are kept out of the tree and
//     scanned linearly as stragglers, with exactly the flat scan's distance
//     calls; queries the tree cannot bound (non-finite coordinates, zero-norm
//     under Cosine) fall back to the flat scan wholesale.
//
// Fallback conditions (the whole index degrades to the flat scan, still
// exact): fewer than MinPoints rows, more than maxIndexDims columns, zero
// columns, or a per-query condition above. knn.index.* obs metrics count
// builds, searches, fallbacks, and nodes/points visited.
package knn

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Index metrics: builds and their node counts, tree searches versus
// flat-scan fallbacks, and how much of the tree each search actually
// touched (the sub-linearity headline).
var (
	indexBuilds       = obs.GetCounter("knn.index.builds")
	indexSearches     = obs.GetCounter("knn.index.searches")
	indexFallbacks    = obs.GetCounter("knn.index.fallbacks")
	indexNodes        = obs.GetHistogram("knn.index.nodes")
	indexNodesVisited = obs.GetHistogram("knn.index.nodes_visited")
	indexPointsScored = obs.GetHistogram("knn.index.points_visited")
)

const (
	// DefaultIndexMinPoints is the training-set size below which NewIndex
	// does not build a tree: the flat scan over a few cache lines beats tree
	// traversal overhead there, and correctness is identical either way.
	DefaultIndexMinPoints = 64
	// defaultLeafSize is the leaf bucket size: leaves are scanned linearly,
	// so a handful of points per leaf keeps the tree shallow and the scans
	// cache-friendly.
	defaultLeafSize = 16
	// maxIndexDims bounds the dimensionality the exactness slack margins are
	// proven for (the floating-point error of a d-dimensional distance grows
	// with d; the slacks below cover d ≤ 512 with >100× headroom — KCCA
	// projections are ≤15). Wider point sets fall back to the flat scan.
	maxIndexDims = 512
	// maxIndexCoord gates coordinates admitted into the tree. Within this
	// magnitude, squared differences and dot products of up to maxIndexDims
	// terms cannot overflow to Inf or NaN, so every in-tree distance is a
	// finite float64 and the pruning arithmetic is total. Rows beyond it are
	// stragglers; queries beyond it fall back to the flat scan.
	maxIndexCoord = 1e150

	// indexSlackRel shrinks the axis-gap lower bound before comparing it to
	// the current kth-best distance: prune only when gap·(1−slack) still
	// exceeds the bound. A d-dimensional Euclidean distance evaluation has
	// relative rounding error below (d/2+2)·2⁻⁵³ ≈ 3e-14 at d = 512; 1e-9 is
	// five orders of magnitude more conservative, at a pruning-power cost
	// that is unmeasurable.
	indexSlackRel = 1e-9
	// indexSlackAbs pads the Cosine pruning bound. Unit-vector coordinates
	// are ≤1 in magnitude, so normalization and distance rounding errors are
	// absolute at eps scale (≈(d+6)·2⁻⁵³ ≤ 1.2e-13 at d = 512); the 1e-9 gap
	// haircut plus this additive pad dominate them by >10³.
	indexSlackAbs = 1e-12
	// indexSlackUnderflow pads the Euclidean pruning bound against gradual
	// underflow: for coordinate differences below ~1.5e-154 the squared
	// terms inside Dist flush to subnormals or zero, so the computed
	// distance can sit up to √(d·minSubnormal) ≈ 3.5e-153 (d = 512) BELOW
	// the axis gap — a purely relative slack misses that (found by
	// FuzzKDTree: two subnormal points both at computed distance 0 with a
	// nonzero gap between them, pruning the lower-index tie). 1e-140 covers
	// the deflation with 10¹² headroom and is far below any distance a
	// caller could tell apart from zero.
	indexSlackUnderflow = 1e-140
)

// IndexConfig tunes index construction. The zero value selects defaults.
type IndexConfig struct {
	// MinPoints is the smallest point count for which a tree is built;
	// smaller sets stay on the flat scan (0 = DefaultIndexMinPoints).
	MinPoints int
	// LeafSize is the leaf bucket size (0 = 16).
	LeafSize int
}

// IndexStats is a snapshot of an Index's shape and usage counters.
type IndexStats struct {
	// Flat reports a whole-index fallback: no tree was built and every
	// search runs the flat scan. FlatReason says why.
	Flat       bool
	FlatReason string
	// Points is the total candidate count; TreePoints of them are in the
	// tree and Stragglers are scanned linearly alongside it.
	Points     int
	TreePoints int
	Stragglers int
	// Nodes and Leaves describe the built tree (0 when Flat).
	Nodes  int
	Leaves int
	// MinPoints and LeafSize echo the resolved configuration.
	MinPoints int
	LeafSize  int
	// Searches counts tree-served queries; FlatSearches counts queries this
	// index answered with the flat scan (whole-index or per-query fallback).
	Searches     int64
	FlatSearches int64
	// NodesVisited and PointsScored total the tree nodes descended into and
	// candidate points distance-scored across all tree searches.
	NodesVisited int64
	PointsScored int64
}

// node is one KD-tree node. Leaves (axis < 0) own order[lo:hi]; internal
// nodes split on axis at value split, with the left child holding
// coordinates ≤ split and the right child ≥ split.
type node struct {
	split       float64
	axis        int32
	left, right int32
	lo, hi      int32
}

// Index is an immutable exact k-nearest-neighbor index over one point set
// under one metric. Build with NewIndex once per model generation; all
// methods are safe for concurrent use and lock-free.
type Index struct {
	metric Distance
	points *linalg.Matrix // original rows: distance evaluation + fallback
	// coords is the geometry the tree descends: points itself for
	// Euclidean, unit-normalized copies for Cosine (where the cosine
	// distance of unit vectors is ‖â−b̂‖²/2, making axis gaps a valid
	// lower bound).
	coords     *linalg.Matrix
	nodes      []node
	order      []int // permutation of in-tree row indices; leaves own ranges
	stragglers []int // rows excluded from the tree, scanned linearly
	leaves     int
	flatReason string // non-empty → whole-index flat fallback
	minPoints  int
	leafSize   int

	searches     atomic.Int64
	flatSearches atomic.Int64
	nodesVisited atomic.Int64
	pointsScored atomic.Int64
}

// NewIndex builds an exact KD-tree index over the rows of points under the
// metric, with default configuration. It never fails: inputs the tree
// cannot serve yield an index that answers every query with the flat scan.
func NewIndex(points *linalg.Matrix, metric Distance) *Index {
	return NewIndexWith(points, metric, IndexConfig{})
}

// NewIndexWith is NewIndex with explicit configuration.
func NewIndexWith(points *linalg.Matrix, metric Distance, cfg IndexConfig) *Index {
	if cfg.MinPoints <= 0 {
		cfg.MinPoints = DefaultIndexMinPoints
	}
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = defaultLeafSize
	}
	ix := &Index{
		metric:    metric,
		points:    points,
		minPoints: cfg.MinPoints,
		leafSize:  cfg.LeafSize,
	}
	switch {
	case points.Rows < cfg.MinPoints:
		ix.flatReason = fmt.Sprintf("fewer than %d points", cfg.MinPoints)
	case points.Cols == 0:
		ix.flatReason = "zero-dimensional points"
	case points.Cols > maxIndexDims:
		ix.flatReason = fmt.Sprintf("more than %d dimensions", maxIndexDims)
	}
	if ix.flatReason != "" {
		return ix
	}
	ix.build()
	indexBuilds.Inc()
	indexNodes.Observe(float64(len(ix.nodes)))
	return ix
}

// treeRow reports whether row i of points can live in the tree: all
// coordinates finite and within the overflow-safe magnitude, and (for
// Cosine) a usable positive norm.
func (ix *Index) treeRow(i int) bool {
	if !coordsUsable(ix.points.Row(i)) {
		return false
	}
	if ix.metric == Cosine {
		return linalg.Norm(ix.points.Row(i)) > 0
	}
	return true
}

// coordsUsable reports whether every coordinate is finite and within
// maxIndexCoord (NaN fails the comparison, so it is rejected too).
func coordsUsable(v []float64) bool {
	for _, x := range v {
		if !(math.Abs(x) <= maxIndexCoord) {
			return false
		}
	}
	return true
}

// build partitions rows into tree points and stragglers, materializes the
// tree geometry, and constructs the node array.
func (ix *Index) build() {
	n := ix.points.Rows
	ix.order = make([]int, 0, n)
	for i := 0; i < n; i++ {
		if ix.treeRow(i) {
			ix.order = append(ix.order, i)
		} else {
			ix.stragglers = append(ix.stragglers, i)
		}
	}
	if len(ix.order) == 0 {
		return // every search scans the stragglers (= the whole set)
	}
	if ix.metric == Cosine {
		// Unit-normalized copies: p̃[j] = p[j]/‖p‖, built with the same Norm
		// the distance function uses. These steer descent and bound pruning
		// only — reported distances always come from the original rows.
		ix.coords = linalg.NewMatrix(n, ix.points.Cols)
		for _, i := range ix.order {
			row, norm := ix.points.Row(i), linalg.Norm(ix.points.Row(i))
			out := ix.coords.Row(i)
			for j, x := range row {
				out[j] = x / norm
			}
		}
	} else {
		ix.coords = ix.points
	}
	ix.nodes = make([]node, 0, 2*len(ix.order)/ix.leafSize+1)
	ix.buildNode(0, len(ix.order))
}

// buildNode builds the subtree over order[lo:hi] and returns its node
// index. Splits choose the axis of greatest spread (ties to the lowest
// axis) and cut at the median under the deterministic (coordinate, row)
// order, so identical inputs always build identical trees.
func (ix *Index) buildNode(lo, hi int) int32 {
	id := int32(len(ix.nodes))
	if hi-lo <= ix.leafSize {
		ix.nodes = append(ix.nodes, node{axis: -1, lo: int32(lo), hi: int32(hi)})
		ix.leaves++
		return id
	}
	axis := 0
	bestSpread := -1.0
	for a := 0; a < ix.coords.Cols; a++ {
		min, max := math.Inf(1), math.Inf(-1)
		for _, i := range ix.order[lo:hi] {
			c := ix.coords.Row(i)[a]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if spread := max - min; spread > bestSpread {
			bestSpread, axis = spread, a
		}
	}
	seg := ix.order[lo:hi]
	sort.Slice(seg, func(i, j int) bool {
		ci, cj := ix.coords.Row(seg[i])[axis], ix.coords.Row(seg[j])[axis]
		if ci != cj {
			return ci < cj
		}
		return seg[i] < seg[j]
	})
	mid := (lo + hi) / 2
	ix.nodes = append(ix.nodes, node{axis: int32(axis), split: ix.coords.Row(ix.order[mid])[axis]})
	left := ix.buildNode(lo, mid)
	right := ix.buildNode(mid, hi)
	ix.nodes[id].left, ix.nodes[id].right = left, right
	return id
}

// Metric returns the distance metric the index was built for.
func (ix *Index) Metric() Distance { return ix.metric }

// Len returns the number of indexed points (tree points + stragglers).
func (ix *Index) Len() int { return ix.points.Rows }

// Flat reports whether the whole index is a flat-scan fallback.
func (ix *Index) Flat() bool { return ix.flatReason != "" || ix.nodes == nil }

// Stats snapshots the index shape and usage counters.
func (ix *Index) Stats() IndexStats {
	reason := ix.flatReason
	if reason == "" && ix.nodes == nil {
		reason = "no tree-representable points"
	}
	return IndexStats{
		Flat:         ix.Flat(),
		FlatReason:   reason,
		Points:       ix.points.Rows,
		TreePoints:   len(ix.order),
		Stragglers:   len(ix.stragglers),
		Nodes:        len(ix.nodes),
		Leaves:       ix.leaves,
		MinPoints:    ix.minPoints,
		LeafSize:     ix.leafSize,
		Searches:     ix.searches.Load(),
		FlatSearches: ix.flatSearches.Load(),
		NodesVisited: ix.nodesVisited.Load(),
		PointsScored: ix.pointsScored.Load(),
	}
}

// Nearest returns the k nearest indexed rows to q, bit-identical to
// Nearest(points, q, k, metric) on the same point set: same (distance,
// index) values in the same total order, NaN-last.
func (ix *Index) Nearest(q []float64, k int) ([]Neighbor, error) {
	defer obs.Span("knn.search")()
	if err := ix.validate(len(q), k); err != nil {
		return nil, err
	}
	searchQueries.Inc()
	return ix.nearestOne(q, k), nil
}

// Search answers a batch of queries, row i of the result holding the k
// nearest neighbors of queries.Row(i) — positionally and bit-identical to
// Search(points, queries, k, metric). Queries fan out across the worker
// pool like the flat batch path.
func (ix *Index) Search(queries *linalg.Matrix, k int) ([][]Neighbor, error) {
	defer obs.Span("knn.search")()
	if queries.Cols != ix.points.Cols {
		return nil, fmt.Errorf("%w: queries have %d dims, points have %d", ErrDimension, queries.Cols, ix.points.Cols)
	}
	if err := ix.validate(queries.Cols, k); err != nil {
		return nil, err
	}
	searchQueries.Add(int64(queries.Rows))
	out := make([][]Neighbor, queries.Rows)
	parallel.For(queries.Rows, 1, func(lo, hi int) {
		for qi := lo; qi < hi; qi++ {
			out[qi] = ix.nearestOne(queries.Row(qi), k)
		}
	})
	return out, nil
}

// validate mirrors the flat scan's error contract exactly.
func (ix *Index) validate(qDims, k int) error {
	if ix.points.Rows == 0 {
		return ErrNoPoints
	}
	if k <= 0 {
		return ErrBadK
	}
	if qDims != ix.points.Cols {
		return fmt.Errorf("%w: query has %d dims, points have %d", ErrDimension, qDims, ix.points.Cols)
	}
	return nil
}

// queryUsable reports whether the tree can bound this query: coordinates
// finite and within magnitude, plus (Cosine) a positive norm. qn is the
// query norm when the metric is Cosine.
func (ix *Index) queryUsable(q []float64, qn float64) bool {
	if !coordsUsable(q) {
		return false
	}
	if ix.metric == Cosine {
		return qn > 0
	}
	return true
}

// nearestOne answers one validated query (k already known positive, dims
// matching). It clamps k, picks tree or fallback, and merges stragglers.
func (ix *Index) nearestOne(q []float64, k int) []Neighbor {
	n := ix.points.Rows
	if k > n {
		k = n
	}
	var qn float64
	if ix.metric == Cosine {
		qn = linalg.Norm(q)
	}
	if ix.nodes == nil || !ix.queryUsable(q, qn) {
		indexFallbacks.Inc()
		ix.flatSearches.Add(1)
		searchCandidates.Observe(float64(n))
		return scanNearest(ix.points, q, qn, k, ix.metric)
	}
	indexSearches.Inc()
	ix.searches.Add(1)

	s := getTreeSearch()
	defer putTreeSearch(s)
	s.ix, s.q, s.qn, s.k = ix, q, qn, k
	s.heap = s.heap[:0]
	if ix.metric == Cosine {
		// Descend in the unit-normalized geometry the tree was built over.
		s.tq = append(s.tq[:0], q...)
		for j := range s.tq {
			s.tq[j] /= qn
		}
	} else {
		s.tq = append(s.tq[:0], q...)
	}
	s.nodes, s.scored = 0, 0
	s.walk(0)
	ix.nodesVisited.Add(int64(s.nodes))
	ix.pointsScored.Add(int64(s.scored))
	indexNodesVisited.Observe(float64(s.nodes))
	indexPointsScored.Observe(float64(s.scored))
	searchCandidates.Observe(float64(s.scored + len(ix.stragglers)))

	// The heap holds the k best tree points; stragglers were never in the
	// tree, so score them with the flat scan's exact distance calls and
	// merge under the same total order.
	out := make([]Neighbor, len(s.heap), len(s.heap)+len(ix.stragglers))
	copy(out, s.heap)
	for _, i := range ix.stragglers {
		out = append(out, Neighbor{Index: i, Distance: pointDistance(ix.points.Row(i), q, qn, ix.metric)})
	}
	ns := neighborSlice(out)
	sort.Sort(&ns)
	if len(out) > k {
		out = out[:k:k]
	}
	return out
}

// pointDistance is the one distance evaluation of the package: the flat
// scan, the tree's candidate scoring, and the straggler merge all call it,
// so every reported distance is the identical float64 no matter which path
// produced it. qn is Norm(q), hoisted once per query (for Cosine).
func pointDistance(p, q []float64, qn float64, metric Distance) float64 {
	if metric == Cosine {
		return linalg.CosineDistanceTo(p, q, qn)
	}
	return linalg.Dist(p, q)
}

// scanNearest is the flat scan over all rows: rank every candidate under
// the total (distance, index) order and return the k best. It is the shared
// serial kernel behind Nearest, Search, and every Index fallback.
func scanNearest(points *linalg.Matrix, q []float64, qn float64, k int, metric Distance) []Neighbor {
	n := points.Rows
	scratch := getNeighbors(n)
	defer putNeighbors(scratch)
	all := *scratch
	for i := 0; i < n; i++ {
		all[i] = Neighbor{Index: i, Distance: pointDistance(points.Row(i), q, qn, metric)}
	}
	sort.Sort(scratch)
	return append(make([]Neighbor, 0, k), all[:k]...)
}

// treeSearch is the pooled per-query state of one tree descent.
type treeSearch struct {
	ix *Index
	q  []float64 // original query (distance evaluation)
	tq []float64 // tree-space query (normalized under Cosine)
	qn float64
	k  int
	// heap is a max-heap under the (distance, index) total order: heap[0]
	// is the current kth-best (worst retained) neighbor.
	heap   []Neighbor
	nodes  int
	scored int
}

var treeSearchPool = sync.Pool{New: func() any { return new(treeSearch) }}

func getTreeSearch() *treeSearch  { return treeSearchPool.Get().(*treeSearch) }
func putTreeSearch(s *treeSearch) { s.ix, s.q = nil, nil; treeSearchPool.Put(s) }

// walk descends the subtree at node ni, nearer child first, pruning the
// farther child only when the slackened axis gap proves no point beyond it
// can enter the heap.
func (s *treeSearch) walk(ni int32) {
	nd := &s.ix.nodes[ni]
	s.nodes++
	if nd.axis < 0 {
		for _, pi := range s.ix.order[nd.lo:nd.hi] {
			s.scored++
			s.push(Neighbor{Index: pi, Distance: pointDistance(s.ix.points.Row(pi), s.q, s.qn, s.ix.metric)})
		}
		return
	}
	diff := s.tq[nd.axis] - nd.split
	near, far := nd.left, nd.right
	if diff >= 0 {
		near, far = nd.right, nd.left
	}
	s.walk(near)
	if !s.prune(math.Abs(diff)) {
		s.walk(far)
	}
}

// prune reports whether the far child behind an axis gap of gap can be
// skipped. It must never return true when any point beyond the gap could
// displace the current kth-best under the total order — hence the strict
// inequalities (equal-distance, smaller-index candidates stay reachable)
// and the slack margins absorbing floating-point rounding (see the package
// comment on exactness).
func (s *treeSearch) prune(gap float64) bool {
	if len(s.heap) < s.k {
		return false
	}
	worst := s.heap[0].Distance
	if s.ix.metric == Cosine {
		// Unit vectors: cosine distance = ‖â−b̂‖²/2 ≥ gap²/2.
		g := gap - indexSlackRel
		return g > 0 && 0.5*g*g > worst*(1+indexSlackRel)+indexSlackAbs
	}
	return gap*(1-indexSlackRel)-indexSlackUnderflow > worst
}

// push offers one scored candidate to the bounded max-heap.
func (s *treeSearch) push(nb Neighbor) {
	h := s.heap
	if len(h) < s.k {
		h = append(h, nb)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !less(h[p], h[i]) {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		s.heap = h
		return
	}
	if !less(nb, h[0]) {
		return
	}
	h[0] = nb
	i := 0
	for {
		l, r, top := 2*i+1, 2*i+2, i
		if l < len(h) && less(h[top], h[l]) {
			top = l
		}
		if r < len(h) && less(h[top], h[r]) {
			top = r
		}
		if top == i {
			break
		}
		h[i], h[top] = h[top], h[i]
		i = top
	}
}
