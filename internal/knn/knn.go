// Package knn implements the nearest-neighbor prediction step of the
// paper's Fig. 7: given a new query's coordinates in the KCCA query
// projection, find its k nearest training neighbors there and combine
// their raw performance vectors into a prediction. The paper's three
// design questions — distance metric (Table I), neighbor count (Table II),
// and neighbor weighting (Table III) — are all first-class options here.
package knn

import (
	"errors"
	"math"
	"sort"

	"repro/internal/linalg"
)

// Distance selects the neighbor distance metric.
type Distance int

const (
	// Euclidean distance won in the paper's Table I.
	Euclidean Distance = iota
	// Cosine distance captures direction-wise nearness.
	Cosine
)

func (d Distance) String() string {
	if d == Cosine {
		return "cosine"
	}
	return "euclidean"
}

// Weighting selects how neighbor performance vectors are combined.
type Weighting int

const (
	// EqualWeight averages all neighbors equally — the paper's choice.
	EqualWeight Weighting = iota
	// RankWeight weights neighbors 3:2:1 (and so on) by nearness rank.
	RankWeight
	// DistanceWeight weights neighbors by inverse distance.
	DistanceWeight
)

func (w Weighting) String() string {
	switch w {
	case RankWeight:
		return "rank(3:2:1)"
	case DistanceWeight:
		return "inverse-distance"
	default:
		return "equal"
	}
}

// Neighbor is one nearest neighbor with its index and distance.
type Neighbor struct {
	Index    int
	Distance float64
}

// Options configures prediction.
type Options struct {
	K         int
	Distance  Distance
	Weighting Weighting
}

// DefaultOptions returns the paper's final choices: k = 3, Euclidean
// distance, equal weighting.
func DefaultOptions() Options {
	return Options{K: 3, Distance: Euclidean, Weighting: EqualWeight}
}

// Nearest returns the k nearest rows of points to q under the metric,
// sorted by ascending distance.
func Nearest(points *linalg.Matrix, q []float64, k int, metric Distance) ([]Neighbor, error) {
	n := points.Rows
	if n == 0 {
		return nil, errors.New("knn: no points")
	}
	if k <= 0 {
		return nil, errors.New("knn: nonpositive k")
	}
	if k > n {
		k = n
	}
	all := make([]Neighbor, n)
	for i := 0; i < n; i++ {
		var d float64
		if metric == Cosine {
			d = linalg.CosineDistance(points.Row(i), q)
		} else {
			d = linalg.Dist(points.Row(i), q)
		}
		all[i] = Neighbor{Index: i, Distance: d}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Distance != all[b].Distance {
			return all[a].Distance < all[b].Distance
		}
		return all[a].Index < all[b].Index
	})
	return all[:k], nil
}

// Combine merges the value vectors of the neighbors (rows of values
// indexed by Neighbor.Index) into one prediction under the weighting
// scheme.
func Combine(values *linalg.Matrix, neighbors []Neighbor, w Weighting) []float64 {
	out := make([]float64, values.Cols)
	if len(neighbors) == 0 {
		return out
	}
	total := 0.0
	for rank, nb := range neighbors {
		var wt float64
		switch w {
		case RankWeight:
			wt = float64(len(neighbors) - rank)
		case DistanceWeight:
			wt = 1 / (nb.Distance + 1e-9)
		default:
			wt = 1
		}
		linalg.Axpy(wt, values.Row(nb.Index), out)
		total += wt
	}
	linalg.ScaleVec(1/total, out)
	return out
}

// Predict is Nearest followed by Combine.
func Predict(points, values *linalg.Matrix, q []float64, opt Options) ([]float64, []Neighbor, error) {
	if points.Rows != values.Rows {
		return nil, nil, errors.New("knn: point and value row counts differ")
	}
	nbs, err := Nearest(points, q, opt.K, opt.Distance)
	if err != nil {
		return nil, nil, err
	}
	return Combine(values, nbs, opt.Weighting), nbs, nil
}

// Confidence converts the neighbor distances into a confidence score in
// (0, 1]: queries far from all their neighbors get low confidence. This is
// the paper's Sec. VII-C.3 idea for flagging anomalous queries whose
// predictions should not be trusted. The scale parameter is a reference
// distance (for example the median neighbor distance on the training set).
func Confidence(neighbors []Neighbor, scale float64) float64 {
	if len(neighbors) == 0 {
		return 0
	}
	if scale <= 0 {
		scale = 1
	}
	mean := 0.0
	for _, nb := range neighbors {
		mean += nb.Distance
	}
	mean /= float64(len(neighbors))
	return math.Exp(-mean / scale)
}
