// Package knn implements the nearest-neighbor prediction step of the
// paper's Fig. 7: given a new query's coordinates in the KCCA query
// projection, find its k nearest training neighbors there and combine
// their raw performance vectors into a prediction. The paper's three
// design questions — distance metric (Table I), neighbor count (Table II),
// and neighbor weighting (Table III) — are all first-class options here.
package knn

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Search metrics: every Nearest/Search call counts its queries and observes
// how many candidate points each query was ranked against.
var (
	searchQueries    = obs.GetCounter("knn.search.queries")
	searchCandidates = obs.GetHistogram("knn.search.candidates")
)

// Sentinel errors, for errors.Is branching by callers (core wraps these,
// and the serving layer maps them to HTTP status codes).
var (
	// ErrNoPoints means the candidate set was empty.
	ErrNoPoints = errors.New("knn: no points")
	// ErrBadK means the requested neighbor count was not positive.
	ErrBadK = errors.New("knn: nonpositive k")
	// ErrDimension means query and point dimensionalities differ, or the
	// point and value matrices disagree on row count.
	ErrDimension = errors.New("knn: dimension mismatch")
)

// Distance selects the neighbor distance metric.
type Distance int

const (
	// Euclidean distance won in the paper's Table I.
	Euclidean Distance = iota
	// Cosine distance captures direction-wise nearness.
	Cosine
)

func (d Distance) String() string {
	if d == Cosine {
		return "cosine"
	}
	return "euclidean"
}

// Weighting selects how neighbor performance vectors are combined.
type Weighting int

const (
	// EqualWeight averages all neighbors equally — the paper's choice.
	EqualWeight Weighting = iota
	// RankWeight weights neighbors by nearness rank, k:(k-1):…:1 for any k
	// (3:2:1 at the paper's k = 3), normalized to sum to 1 by Combine.
	RankWeight
	// DistanceWeight weights neighbors by inverse distance.
	DistanceWeight
)

func (w Weighting) String() string {
	switch w {
	case RankWeight:
		return "rank(3:2:1)"
	case DistanceWeight:
		return "inverse-distance"
	default:
		return "equal"
	}
}

// Neighbor is one nearest neighbor with its index and distance.
type Neighbor struct {
	Index    int
	Distance float64
}

// neighborSlice implements sort.Interface under the canonical (distance,
// index) order. Sorting through a *neighborSlice from the scratch pool keeps
// the sort allocation-free (a pointer fits the interface word; sort.Slice
// would allocate its closure and reflect swapper on every call).
type neighborSlice []Neighbor

func (s *neighborSlice) Len() int           { return len(*s) }
func (s *neighborSlice) Less(i, j int) bool { return less((*s)[i], (*s)[j]) }
func (s *neighborSlice) Swap(i, j int)      { (*s)[i], (*s)[j] = (*s)[j], (*s)[i] }

// neighborPool recycles the n-sized candidate rankings built by
// Nearest/Search. Ranking n candidates needs an n-entry scratch slice that
// would otherwise be allocated (and become garbage) on every call — the
// predict hot path calls Nearest once per query, so at n = 4000 training
// points that was ~64 KiB of garbage per prediction. Only the k winners are
// copied out.
var neighborPool = sync.Pool{New: func() any { return new(neighborSlice) }}

func getNeighbors(n int) *neighborSlice {
	s := neighborPool.Get().(*neighborSlice)
	if cap(*s) < n {
		*s = make(neighborSlice, n)
	}
	*s = (*s)[:n]
	return s
}

func putNeighbors(s *neighborSlice) { neighborPool.Put(s) }

// Options configures prediction.
type Options struct {
	K         int
	Distance  Distance
	Weighting Weighting
}

// DefaultOptions returns the paper's final choices: k = 3, Euclidean
// distance, equal weighting.
func DefaultOptions() Options {
	return Options{K: 3, Distance: Euclidean, Weighting: EqualWeight}
}

// Nearest returns the k nearest rows of points to q under the metric,
// sorted by ascending (distance, index). The index tie-break is load-
// bearing: equal-distance neighbors (duplicated training rows are common in
// template workloads) must order identically no matter how the distance
// computation was partitioned, or parallel runs could silently reorder
// predictions under weighted combination.
func Nearest(points *linalg.Matrix, q []float64, k int, metric Distance) ([]Neighbor, error) {
	defer obs.Span("knn.search")()
	n := points.Rows
	if n == 0 {
		return nil, ErrNoPoints
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	if len(q) != points.Cols {
		return nil, fmt.Errorf("%w: query has %d dims, points have %d", ErrDimension, len(q), points.Cols)
	}
	if k > n {
		k = n
	}
	searchQueries.Inc()
	searchCandidates.Observe(float64(n))
	scratch := getNeighbors(n)
	defer putNeighbors(scratch)
	all := *scratch
	// The query norm is hoisted once per query: under Cosine the flat scan
	// used to recompute Norm(q) for every candidate row, an O(N·d) tax on
	// top of the O(N·d) distances themselves. CosineDistanceTo runs the
	// identical operations on the precomputed value, so results are
	// bit-identical.
	var qn float64
	if metric == Cosine {
		qn = linalg.Norm(q)
	}
	// Distance computation fans out across the worker pool; each index is
	// written by exactly one worker, so the slice contents match the serial
	// loop exactly and the sort below sees identical input.
	parallel.For(n, parallel.GrainFor(points.Cols, 1<<14), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			all[i] = Neighbor{Index: i, Distance: pointDistance(points.Row(i), q, qn, metric)}
		}
	})
	sort.Sort(scratch)
	return append(make([]Neighbor, 0, k), all[:k]...), nil
}

// less is the total order on neighbors: ascending distance, then ascending
// index. NaN distances sort last so poisoned rows never shadow real
// neighbors; among themselves NaN entries also break ties by index, so the
// order is total even on all-NaN tails (sort.Sort is unstable — without the
// index tie-break, two NaN rows could come back in either order, and the
// tree and flat paths could then legally disagree).
func less(a, b Neighbor) bool {
	an, bn := math.IsNaN(a.Distance), math.IsNaN(b.Distance)
	if an != bn {
		return bn // the non-NaN side sorts first
	}
	if !an && a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Index < b.Index
}

// Search answers a batch of queries at once: result row i holds the k
// nearest neighbors of queries.Row(i), each sorted by ascending
// (distance, index) exactly as Nearest returns them. Queries fan out across
// the worker pool (each query's own distance pass stays serial to avoid
// oversubscribing it); results are positionally identical to calling
// Nearest in a loop.
func Search(points, queries *linalg.Matrix, k int, metric Distance) ([][]Neighbor, error) {
	defer obs.Span("knn.search")()
	if queries.Cols != points.Cols {
		return nil, fmt.Errorf("%w: queries have %d dims, points have %d", ErrDimension, queries.Cols, points.Cols)
	}
	n := points.Rows
	if n == 0 {
		return nil, ErrNoPoints
	}
	if k <= 0 {
		return nil, ErrBadK
	}
	if k > n {
		k = n
	}
	searchQueries.Add(int64(queries.Rows))
	out := make([][]Neighbor, queries.Rows)
	parallel.For(queries.Rows, 1, func(lo, hi int) {
		for qi := lo; qi < hi; qi++ {
			searchCandidates.Observe(float64(n))
			q := queries.Row(qi)
			// The query norm is hoisted once per query (see Nearest); the
			// shared scan kernel uses pooled ranking buffers and copies only
			// the k winners out.
			var qn float64
			if metric == Cosine {
				qn = linalg.Norm(q)
			}
			out[qi] = scanNearest(points, q, qn, k, metric)
		}
	})
	return out, nil
}

// Combine merges the value vectors of the neighbors (rows of values
// indexed by Neighbor.Index) into one prediction under the weighting
// scheme.
func Combine(values *linalg.Matrix, neighbors []Neighbor, w Weighting) []float64 {
	out := make([]float64, values.Cols)
	if len(neighbors) == 0 {
		return out
	}
	total := 0.0
	for rank, nb := range neighbors {
		var wt float64
		switch w {
		case RankWeight:
			wt = float64(len(neighbors) - rank)
		case DistanceWeight:
			wt = 1 / (nb.Distance + 1e-9)
		default:
			wt = 1
		}
		linalg.Axpy(wt, values.Row(nb.Index), out)
		total += wt
	}
	linalg.ScaleVec(1/total, out)
	return out
}

// Predict is Nearest followed by Combine.
func Predict(points, values *linalg.Matrix, q []float64, opt Options) ([]float64, []Neighbor, error) {
	if points.Rows != values.Rows {
		return nil, nil, fmt.Errorf("%w: %d points but %d value rows", ErrDimension, points.Rows, values.Rows)
	}
	nbs, err := Nearest(points, q, opt.K, opt.Distance)
	if err != nil {
		return nil, nil, err
	}
	return Combine(values, nbs, opt.Weighting), nbs, nil
}

// Confidence converts the neighbor distances into a confidence score in
// (0, 1]: queries far from all their neighbors get low confidence. This is
// the paper's Sec. VII-C.3 idea for flagging anomalous queries whose
// predictions should not be trusted. The scale parameter is a reference
// distance (for example the median neighbor distance on the training set).
func Confidence(neighbors []Neighbor, scale float64) float64 {
	if len(neighbors) == 0 {
		return 0
	}
	if scale <= 0 {
		scale = 1
	}
	mean := 0.0
	for _, nb := range neighbors {
		mean += nb.Distance
	}
	mean /= float64(len(neighbors))
	return math.Exp(-mean / scale)
}
