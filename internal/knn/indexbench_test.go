package knn

import (
	"fmt"
	"testing"

	"repro/internal/linalg"
	"repro/internal/statutil"
)

// Predict-path benchmarks at production shapes: N training points in a
// 15-dimensional projection (the paper's KCCA rank ceiling), k = 3
// Euclidean — exactly the per-predict kNN workload after the projection
// cache. BenchmarkPredictScan is the flat O(N·rank) baseline,
// BenchmarkPredictIndexed the per-generation KD-tree; CI runs both at
// N ∈ {4000, 20000, 100000} and BENCH_knn.json records the curves (the
// acceptance bar is a near-flat indexed curve).

const benchDims = 15

// benchCloud models the paper's workload structure: queries are template
// instantiations, so each projected point is its template's mode plus a few
// latent parameter directions (the varied literals) plus small residual
// noise. The ambient space is 15-dimensional but the intrinsic
// dimensionality per cluster is ~3 — the regime where an exact KD-tree
// prunes effectively. (Uniform i.i.d. 15-dim noise is the known KD-tree
// worst case and does not resemble a templated workload.)
func benchCloud(seed int64, n int) *linalg.Matrix {
	rng := statutil.NewRNG(seed, "knn-bench")
	const templates, factors = 12, 3
	centers := linalg.NewMatrix(templates, benchDims)
	for i := range centers.Data {
		centers.Data[i] = 5 * rng.NormFloat64()
	}
	dirs := linalg.NewMatrix(templates*factors, benchDims)
	for i := range dirs.Data {
		dirs.Data[i] = rng.NormFloat64()
	}
	m := linalg.NewMatrix(n, benchDims)
	for i := 0; i < n; i++ {
		t := rng.Intn(templates)
		row := m.Row(i)
		copy(row, centers.Row(t))
		for f := 0; f < factors; f++ {
			alpha := 0.5 * rng.NormFloat64()
			d := dirs.Row(t*factors + f)
			for j := 0; j < benchDims; j++ {
				row[j] += alpha * d[j]
			}
		}
		for j := 0; j < benchDims; j++ {
			row[j] += 0.02 * rng.NormFloat64()
		}
	}
	return m
}

func benchSizes() []int { return []int{4000, 20000, 100000} }

// benchSplit draws points and queries from one cloud (same templates —
// queries are instantiations of the same workload the model trained on,
// as in serving).
func benchSplit(seed int64, n int) (points, queries *linalg.Matrix) {
	const nq = 256
	all := benchCloud(seed, n+nq)
	points = linalg.NewMatrixFrom(n, benchDims, all.Data[:n*benchDims])
	queries = linalg.NewMatrixFrom(nq, benchDims, all.Data[n*benchDims:])
	return points, queries
}

func BenchmarkPredictScan(b *testing.B) {
	for _, n := range benchSizes() {
		points, queries := benchSplit(31, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Nearest(points, queries.Row(i%queries.Rows), 3, Euclidean); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPredictIndexed(b *testing.B) {
	for _, n := range benchSizes() {
		points, queries := benchSplit(31, n)
		ix := NewIndex(points, Euclidean)
		if ix.Flat() {
			b.Fatal("benchmark index unexpectedly flat")
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ix.Nearest(queries.Row(i%queries.Rows), 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexBuild prices the once-per-generation construction cost the
// retrain-install path pays for sub-linear serving.
func BenchmarkIndexBuild(b *testing.B) {
	for _, n := range benchSizes() {
		points := benchCloud(31, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ix := NewIndex(points, Euclidean)
				if ix.Flat() {
					b.Fatal("flat")
				}
			}
		})
	}
}

// BenchmarkNearestCosine is the regression guard for the hoisted query
// norm: the cosine flat scan must compute Norm(q) once per query, not once
// per candidate. A reintroduced per-candidate norm roughly doubles this
// benchmark's ns/op (two O(d) passes per candidate instead of one), which
// the bench-smoke CI job surfaces.
func BenchmarkNearestCosine(b *testing.B) {
	points, queries := benchSplit(33, 4000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Nearest(points, queries.Row(i%queries.Rows), 3, Cosine); err != nil {
			b.Fatal(err)
		}
	}
}
