package knn

import (
	"math"
	"testing"

	"repro/internal/linalg"
)

var points = linalg.FromRows([][]float64{
	{0, 0},
	{1, 0},
	{0, 1},
	{5, 5},
	{10, 10},
})

var values = linalg.FromRows([][]float64{
	{10, 1},
	{20, 2},
	{30, 3},
	{40, 4},
	{50, 5},
})

func TestNearestEuclidean(t *testing.T) {
	nbs, err := Nearest(points, []float64{0.1, 0.1}, 3, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 3 {
		t.Fatalf("got %d neighbors", len(nbs))
	}
	if nbs[0].Index != 0 {
		t.Errorf("nearest = %d, want 0", nbs[0].Index)
	}
	for i := 1; i < len(nbs); i++ {
		if nbs[i].Distance < nbs[i-1].Distance {
			t.Error("neighbors not sorted by distance")
		}
	}
}

func TestNearestCosine(t *testing.T) {
	// Direction (1,1): cosine distance prefers (5,5) and (10,10) over
	// (1,0) despite their larger magnitudes.
	nbs, err := Nearest(points, []float64{1, 1}, 2, Cosine)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{nbs[0].Index: true, nbs[1].Index: true}
	if !got[3] || !got[4] {
		t.Errorf("cosine neighbors = %v, want indexes 3 and 4", nbs)
	}
}

func TestNearestClampsK(t *testing.T) {
	nbs, err := Nearest(points, []float64{0, 0}, 100, Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != points.Rows {
		t.Errorf("k should clamp to n, got %d", len(nbs))
	}
}

func TestNearestErrors(t *testing.T) {
	if _, err := Nearest(linalg.NewMatrix(0, 2), []float64{1, 2}, 1, Euclidean); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := Nearest(points, []float64{1, 2}, 0, Euclidean); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestCombineEqual(t *testing.T) {
	nbs := []Neighbor{{Index: 0, Distance: 1}, {Index: 1, Distance: 2}, {Index: 2, Distance: 3}}
	got := Combine(values, nbs, EqualWeight)
	if math.Abs(got[0]-20) > 1e-12 || math.Abs(got[1]-2) > 1e-12 {
		t.Errorf("equal combine = %v, want [20 2]", got)
	}
}

func TestCombineRank(t *testing.T) {
	nbs := []Neighbor{{Index: 0, Distance: 1}, {Index: 1, Distance: 2}, {Index: 2, Distance: 3}}
	got := Combine(values, nbs, RankWeight)
	// 3:2:1 weights → (3·10 + 2·20 + 1·30) / 6 = 100/6.
	if math.Abs(got[0]-100.0/6) > 1e-12 {
		t.Errorf("rank combine = %v, want %v", got[0], 100.0/6)
	}
}

func TestCombineDistance(t *testing.T) {
	nbs := []Neighbor{{Index: 0, Distance: 1}, {Index: 1, Distance: 1e9}}
	got := Combine(values, nbs, DistanceWeight)
	// The far neighbor contributes almost nothing.
	if math.Abs(got[0]-10) > 0.01 {
		t.Errorf("distance combine = %v, want ~10", got[0])
	}
}

func TestCombineEmpty(t *testing.T) {
	got := Combine(values, nil, EqualWeight)
	for _, v := range got {
		if v != 0 {
			t.Errorf("empty combine = %v", got)
		}
	}
}

func TestPredict(t *testing.T) {
	pred, nbs, err := Predict(points, values, []float64{0.2, 0.2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 3 {
		t.Fatalf("neighbors = %d", len(nbs))
	}
	// Neighbors are rows 0,1,2 → mean of values = (20, 2).
	if math.Abs(pred[0]-20) > 1e-12 {
		t.Errorf("prediction = %v", pred)
	}
	if _, _, err := Predict(points, linalg.NewMatrix(2, 2), []float64{0, 0}, DefaultOptions()); err == nil {
		t.Error("mismatched values accepted")
	}
}

func TestConfidence(t *testing.T) {
	near := []Neighbor{{Distance: 0.01}, {Distance: 0.02}}
	far := []Neighbor{{Distance: 100}, {Distance: 200}}
	cn := Confidence(near, 1)
	cf := Confidence(far, 1)
	if cn <= cf {
		t.Errorf("near confidence (%v) should exceed far (%v)", cn, cf)
	}
	if cn <= 0 || cn > 1 {
		t.Errorf("confidence out of range: %v", cn)
	}
	if Confidence(nil, 1) != 0 {
		t.Error("empty neighbors should have zero confidence")
	}
	if Confidence(near, 0) <= 0 {
		t.Error("zero scale should fall back safely")
	}
}

func TestMetricAndWeightingStrings(t *testing.T) {
	if Euclidean.String() != "euclidean" || Cosine.String() != "cosine" {
		t.Error("distance names wrong")
	}
	if EqualWeight.String() != "equal" || RankWeight.String() != "rank(3:2:1)" || DistanceWeight.String() != "inverse-distance" {
		t.Error("weighting names wrong")
	}
}

// TestCombineRankWeightGeneralizes pins down that RankWeight's "3:2:1 (and
// so on)" weight vector generalizes beyond the paper's k = 3: for any k the
// weights are k:(k-1):…:1 by nearness rank and normalize to sum to 1.
func TestCombineRankWeightGeneralizes(t *testing.T) {
	values := linalg.FromRows([][]float64{
		{1, 10},
		{2, 20},
		{3, 30},
		{4, 40},
		{5, 50},
	})
	for _, k := range []int{1, 2, 3, 5} {
		neighbors := make([]Neighbor, k)
		for i := range neighbors {
			neighbors[i] = Neighbor{Index: i, Distance: float64(i)}
		}
		got := Combine(values, neighbors, RankWeight)

		// Reference: explicit k:(k-1):…:1 weighted mean.
		var total float64
		want := make([]float64, values.Cols)
		for rank := 0; rank < k; rank++ {
			wt := float64(k - rank)
			total += wt
			for j := 0; j < values.Cols; j++ {
				want[j] += wt * values.At(rank, j)
			}
		}
		for j := range want {
			want[j] /= total
		}
		for j := range want {
			if diff := got[j] - want[j]; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("k=%d: out[%d] = %v, want %v", k, j, got[j], want[j])
			}
		}
		// total must equal k(k+1)/2 — the full k:(k-1):…:1 vector, not a
		// hard-coded three ranks.
		if total != float64(k*(k+1))/2 {
			t.Fatalf("k=%d: reference weight total %v, want %v", k, total, float64(k*(k+1))/2)
		}
	}
}

// TestCombineRankWeightNormalizes: with identical neighbor rows any
// normalized weighting must return the row itself, for every k.
func TestCombineRankWeightNormalizes(t *testing.T) {
	row := []float64{7, -3, 0.5}
	rows := make([][]float64, 5)
	for i := range rows {
		rows[i] = row
	}
	values := linalg.FromRows(rows)
	for _, k := range []int{1, 2, 3, 5} {
		neighbors := make([]Neighbor, k)
		for i := range neighbors {
			neighbors[i] = Neighbor{Index: i, Distance: float64(i) * 0.1}
		}
		got := Combine(values, neighbors, RankWeight)
		for j := range row {
			if diff := got[j] - row[j]; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("k=%d: out[%d] = %v, want %v (weights must sum to 1)", k, j, got[j], row[j])
			}
		}
	}
}
