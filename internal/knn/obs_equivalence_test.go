package knn

import (
	"testing"

	"repro/internal/obs"
)

// TestEquivalenceWithObsEnabled re-runs the serial/parallel equivalence
// suite with instrumentation on: the search counters and candidate
// histogram (updated from pool workers) must not perturb results.
func TestEquivalenceWithObsEnabled(t *testing.T) {
	defer obs.SetEnabled(obs.SetEnabled(true))
	t.Run("Nearest", TestNearestParallelMatchesSerial)
	t.Run("Search", TestSearchMatchesNearestLoop)
}
