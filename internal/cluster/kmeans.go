// Package cluster implements K-means clustering with k-means++ seeding —
// the Sec. V-B baseline. The paper's point is that clustering a single
// dataset cannot predict across two datasets: clusters in query-feature
// space do not correspond to clusters in performance space. The
// experiments use this package to demonstrate exactly that mismatch.
package cluster

import (
	"errors"
	"math"

	"repro/internal/linalg"
	"repro/internal/statutil"
)

// Result holds a K-means clustering.
type Result struct {
	// Centroids has one row per cluster.
	Centroids *linalg.Matrix
	// Assign maps each input row to its cluster index.
	Assign []int
	// Inertia is the total squared distance to assigned centroids.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// KMeans clusters the rows of x into k clusters using k-means++ seeding
// followed by Lloyd's algorithm.
func KMeans(x *linalg.Matrix, k int, r *statutil.RNG, maxIter int) (*Result, error) {
	n := x.Rows
	if k <= 0 || k > n {
		return nil, errors.New("cluster: k out of range")
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	cent := seedPlusPlus(x, k, r)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	var inertia float64
	iters := 0
	for ; iters < maxIter; iters++ {
		changed := false
		inertia = 0
		counts := make([]int, k)
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := sqDist(x.Row(i), cent.Row(c))
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
			counts[best]++
			inertia += bestD
		}
		if !changed {
			break
		}
		// Recompute centroids.
		next := linalg.NewMatrix(k, x.Cols)
		for i := 0; i < n; i++ {
			linalg.Axpy(1, x.Row(i), next.Row(assign[i]))
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(next.Row(c), x.Row(r.Intn(n)))
				continue
			}
			linalg.ScaleVec(1/float64(counts[c]), next.Row(c))
		}
		cent = next
	}
	return &Result{Centroids: cent, Assign: assign, Inertia: inertia, Iters: iters}, nil
}

// Nearest returns the index of the centroid nearest to v.
func (res *Result) Nearest(v []float64) int {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < res.Centroids.Rows; c++ {
		d := sqDist(v, res.Centroids.Row(c))
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func seedPlusPlus(x *linalg.Matrix, k int, r *statutil.RNG) *linalg.Matrix {
	n := x.Rows
	cent := linalg.NewMatrix(k, x.Cols)
	copy(cent.Row(0), x.Row(r.Intn(n)))
	dists := make([]float64, n)
	for c := 1; c < k; c++ {
		total := 0.0
		for i := 0; i < n; i++ {
			d := math.Inf(1)
			for cc := 0; cc < c; cc++ {
				if dd := sqDist(x.Row(i), cent.Row(cc)); dd < d {
					d = dd
				}
			}
			dists[i] = d
			total += d
		}
		if total == 0 {
			// All points coincide with existing centroids.
			copy(cent.Row(c), x.Row(r.Intn(n)))
			continue
		}
		target := r.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range dists {
			acc += d
			if acc >= target {
				pick = i
				break
			}
		}
		copy(cent.Row(c), x.Row(pick))
	}
	return cent
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// AgreementScore measures how well a clustering of dataset A predicts a
// clustering of dataset B over the same items: for every pair of items it
// checks whether co-membership in A's clusters matches co-membership in
// B's clusters (the Rand index). A score near 0.5 means A's clusters carry
// no information about B's — the paper's argument against clustering-based
// prediction.
func AgreementScore(assignA, assignB []int) float64 {
	n := len(assignA)
	if n != len(assignB) || n < 2 {
		return math.NaN()
	}
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameA := assignA[i] == assignA[j]
			sameB := assignB[i] == assignB[j]
			if sameA == sameB {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total)
}
