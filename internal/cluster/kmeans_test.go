package cluster

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/statutil"
)

func blobs(r *statutil.RNG, centers [][]float64, perBlob int, spread float64) (*linalg.Matrix, []int) {
	n := len(centers) * perBlob
	x := linalg.NewMatrix(n, len(centers[0]))
	labels := make([]int, n)
	for b, c := range centers {
		for i := 0; i < perBlob; i++ {
			row := x.Row(b*perBlob + i)
			for j := range row {
				row[j] = c[j] + spread*r.NormFloat64()
			}
			labels[b*perBlob+i] = b
		}
	}
	return x, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	r := statutil.NewRNG(1, "blobs")
	x, labels := blobs(r, [][]float64{{0, 0}, {10, 10}, {-10, 10}}, 40, 0.5)
	res, err := KMeans(x, 3, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	// All points of one true blob must share a cluster, and different
	// blobs must get different clusters.
	blobCluster := map[int]int{}
	for i, lbl := range labels {
		c := res.Assign[i]
		if prev, ok := blobCluster[lbl]; ok && prev != c {
			t.Fatalf("blob %d split across clusters", lbl)
		}
		blobCluster[lbl] = c
	}
	seen := map[int]bool{}
	for _, c := range blobCluster {
		if seen[c] {
			t.Fatal("two blobs merged into one cluster")
		}
		seen[c] = true
	}
	if res.Inertia <= 0 {
		t.Errorf("inertia = %v", res.Inertia)
	}
}

func TestKMeansNearest(t *testing.T) {
	r := statutil.NewRNG(2, "nearest")
	x, _ := blobs(r, [][]float64{{0, 0}, {10, 10}}, 20, 0.3)
	res, err := KMeans(x, 2, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	near := res.Nearest([]float64{9.8, 10.2})
	far := res.Nearest([]float64{0.1, -0.3})
	if near == far {
		t.Error("distinct blobs should map to distinct centroids")
	}
}

func TestKMeansErrors(t *testing.T) {
	x := linalg.NewMatrix(3, 2)
	r := statutil.NewRNG(3, "err")
	if _, err := KMeans(x, 0, r, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(x, 4, r, 10); err == nil {
		t.Error("k>n accepted")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	r := statutil.NewRNG(4, "kn")
	x, _ := blobs(r, [][]float64{{0, 0}, {5, 5}}, 2, 0.01)
	res, err := KMeans(x, 4, r, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 4 {
		t.Fatalf("assign length = %d", len(res.Assign))
	}
}

func TestAgreementScore(t *testing.T) {
	// Identical clusterings agree perfectly.
	a := []int{0, 0, 1, 1, 2, 2}
	if s := AgreementScore(a, a); s != 1 {
		t.Errorf("self agreement = %v, want 1", s)
	}
	// A permuted labeling is still the same clustering.
	b := []int{5, 5, 9, 9, 7, 7}
	if s := AgreementScore(a, b); s != 1 {
		t.Errorf("permuted agreement = %v, want 1", s)
	}
	if !math.IsNaN(AgreementScore(a, []int{0})) {
		t.Error("mismatched lengths should be NaN")
	}
}

func TestClusteringCannotBridgeDatasets(t *testing.T) {
	// The paper's Sec. V-B argument: points clustered by query features do
	// not correspond to points clustered by performance. Construct two
	// views where view A clusters by the first coordinate and view B by an
	// unrelated random grouping; the Rand agreement should be far from 1.
	r := statutil.NewRNG(5, "bridge")
	xa, _ := blobs(r, [][]float64{{0, 0}, {20, 0}}, 30, 0.5)
	resA, err := KMeans(xa, 2, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	// View B: random blob membership, independent of A.
	assignB := make([]int, 60)
	for i := range assignB {
		assignB[i] = r.Intn(2)
	}
	s := AgreementScore(resA.Assign, assignB)
	if s > 0.7 {
		t.Errorf("independent views agree too much: %v", s)
	}
}
