// Package sqlgen defines the abstract syntax tree for the SQL dialect used
// by the reproduction's workload generator, plus rendering of ASTs to SQL
// text. The dialect covers the constructs the paper's feature vectors
// measure: multi-way joins (equi and non-equi), selection predicates
// (equality, range, IN lists), nested subqueries (IN / EXISTS), grouping,
// aggregation, ordering, and LIMIT.
package sqlgen

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// CmpOp enumerates comparison operators.
type CmpOp int

const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
	OpIn
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	case OpIn:
		return "IN"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// IsEquality reports whether the operator is an equality comparison.
func (op CmpOp) IsEquality() bool { return op == OpEq }

// AggFunc enumerates aggregate functions.
type AggFunc int

const (
	AggNone AggFunc = iota
	AggCount
	AggCountStar
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggFunc) String() string {
	switch a {
	case AggNone:
		return ""
	case AggCount, AggCountStar:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("agg(%d)", int(a))
	}
}

// ColumnRef names a column, optionally qualified by table name or alias.
type ColumnRef struct {
	Table  string // table name or alias; may be empty
	Column string
}

func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// SelectItem is one output expression: either a plain column or an
// aggregate over a column (or COUNT(*)).
type SelectItem struct {
	Agg AggFunc
	Col ColumnRef // ignored for AggCountStar
}

// TableRef is a FROM-list entry.
type TableRef struct {
	Table string
	Alias string // empty means no alias
}

// Name returns the alias if set, else the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// JoinPred is a join predicate between two columns.
type JoinPred struct {
	Left, Right ColumnRef
	Op          CmpOp // OpEq for equijoin; others are non-equijoins
}

// Literal is a predicate constant. Char-typed values are stored as
// dictionary codes and rendered as quoted strings.
type Literal struct {
	Value  float64
	IsChar bool
}

// Render formats the literal as SQL text. Integral values render without
// exponent notation so that surrogate keys read naturally.
func (l Literal) Render() string {
	if l.IsChar {
		return "'v" + strconv.FormatInt(int64(l.Value), 10) + "'"
	}
	if l.Value == math.Trunc(l.Value) && math.Abs(l.Value) < 1e15 {
		return strconv.FormatInt(int64(l.Value), 10)
	}
	return strconv.FormatFloat(l.Value, 'g', -1, 64)
}

// Predicate is one WHERE-clause selection predicate on a single column.
// Exactly one of the value fields is used depending on Op:
//
//	OpEq..OpGe  -> Value
//	OpBetween   -> Lo, Hi
//	OpIn        -> Values (literal list) or Subquery
//
// Exists predicates have Exists == true and use only Subquery.
type Predicate struct {
	Col      ColumnRef
	Op       CmpOp
	Value    Literal
	Lo, Hi   Literal
	Values   []Literal
	Subquery *Query
	Exists   bool
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

// Query is a SELECT statement.
type Query struct {
	Select  []SelectItem
	From    []TableRef
	Joins   []JoinPred
	Where   []Predicate
	GroupBy []ColumnRef
	OrderBy []OrderItem
	Limit   int // 0 means no limit
}

// HasAggregate reports whether any select item is an aggregate.
func (q *Query) HasAggregate() bool {
	for _, s := range q.Select {
		if s.Agg != AggNone {
			return true
		}
	}
	return false
}

// TextStats are the nine SQL-text statistics of Sec. VI-D.1, computed over
// the whole statement including nested subqueries.
type TextStats struct {
	NestedSubqueries   int
	SelectionPreds     int
	EqualitySelections int
	NonEqualitySelects int
	JoinPreds          int
	EquijoinPreds      int
	NonEquijoinPreds   int
	SortColumns        int
	AggregationColumns int
}

// Vector returns the statistics as a feature vector in a fixed order.
func (ts TextStats) Vector() []float64 {
	return []float64{
		float64(ts.NestedSubqueries),
		float64(ts.SelectionPreds),
		float64(ts.EqualitySelections),
		float64(ts.NonEqualitySelects),
		float64(ts.JoinPreds),
		float64(ts.EquijoinPreds),
		float64(ts.NonEquijoinPreds),
		float64(ts.SortColumns),
		float64(ts.AggregationColumns),
	}
}

// TextStatNames returns the feature names matching TextStats.Vector order.
func TextStatNames() []string {
	return []string{
		"nested_subqueries",
		"selection_preds",
		"equality_selections",
		"nonequality_selections",
		"join_preds",
		"equijoin_preds",
		"nonequijoin_preds",
		"sort_columns",
		"aggregation_columns",
	}
}

// Stats computes the SQL-text statistics for the query, recursing into
// subqueries.
func (q *Query) Stats() TextStats {
	var ts TextStats
	q.accumulate(&ts)
	return ts
}

func (q *Query) accumulate(ts *TextStats) {
	for _, p := range q.Where {
		ts.SelectionPreds++
		if p.Op.IsEquality() {
			ts.EqualitySelections++
		} else {
			ts.NonEqualitySelects++
		}
		if p.Subquery != nil {
			ts.NestedSubqueries++
			p.Subquery.accumulate(ts)
		}
	}
	for _, j := range q.Joins {
		ts.JoinPreds++
		if j.Op.IsEquality() {
			ts.EquijoinPreds++
		} else {
			ts.NonEquijoinPreds++
		}
	}
	ts.SortColumns += len(q.OrderBy)
	for _, s := range q.Select {
		if s.Agg != AggNone {
			ts.AggregationColumns++
		}
	}
}

// Tables returns the names (not aliases) of all tables referenced in the
// FROM clause, including those of nested subqueries.
func (q *Query) Tables() []string {
	var out []string
	q.collectTables(&out)
	return out
}

func (q *Query) collectTables(out *[]string) {
	for _, t := range q.From {
		*out = append(*out, t.Table)
	}
	for _, p := range q.Where {
		if p.Subquery != nil {
			p.Subquery.collectTables(out)
		}
	}
}

// Validate performs structural sanity checks: non-empty SELECT and FROM,
// join predicates referencing known FROM entries, and plain select columns
// appearing in GROUP BY when aggregates are present.
func (q *Query) Validate() error {
	if len(q.Select) == 0 {
		return fmt.Errorf("sqlgen: query has no select items")
	}
	if len(q.From) == 0 {
		return fmt.Errorf("sqlgen: query has no FROM tables")
	}
	names := map[string]bool{}
	for _, t := range q.From {
		if names[t.Name()] {
			return fmt.Errorf("sqlgen: duplicate FROM name %q", t.Name())
		}
		names[t.Name()] = true
	}
	check := func(c ColumnRef) error {
		if c.Table != "" && !names[c.Table] {
			return fmt.Errorf("sqlgen: column %s references unknown table %q", c, c.Table)
		}
		return nil
	}
	for _, j := range q.Joins {
		if err := check(j.Left); err != nil {
			return err
		}
		if err := check(j.Right); err != nil {
			return err
		}
	}
	for _, p := range q.Where {
		if !p.Exists {
			if err := check(p.Col); err != nil {
				return err
			}
		}
		if p.Subquery != nil {
			if err := p.Subquery.Validate(); err != nil {
				return err
			}
		}
	}
	if q.HasAggregate() {
		grouped := map[string]bool{}
		for _, g := range q.GroupBy {
			grouped[g.String()] = true
		}
		for _, s := range q.Select {
			if s.Agg == AggNone && !grouped[s.Col.String()] {
				return fmt.Errorf("sqlgen: non-aggregated column %s missing from GROUP BY", s.Col)
			}
		}
	}
	return nil
}

// Render produces the SQL text for the query.
func (q *Query) Render() string {
	var sb strings.Builder
	q.render(&sb)
	return sb.String()
}

func (q *Query) render(sb *strings.Builder) {
	sb.WriteString("SELECT ")
	for i, s := range q.Select {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case s.Agg == AggCountStar:
			sb.WriteString("COUNT(*)")
		case s.Agg != AggNone:
			sb.WriteString(s.Agg.String())
			sb.WriteByte('(')
			sb.WriteString(s.Col.String())
			sb.WriteByte(')')
		default:
			sb.WriteString(s.Col.String())
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Table)
		if t.Alias != "" {
			sb.WriteString(" AS ")
			sb.WriteString(t.Alias)
		}
	}
	conds := 0
	writeCond := func() {
		if conds == 0 {
			sb.WriteString(" WHERE ")
		} else {
			sb.WriteString(" AND ")
		}
		conds++
	}
	for _, j := range q.Joins {
		writeCond()
		sb.WriteString(j.Left.String())
		sb.WriteByte(' ')
		sb.WriteString(j.Op.String())
		sb.WriteByte(' ')
		sb.WriteString(j.Right.String())
	}
	for _, p := range q.Where {
		writeCond()
		p.render(sb)
	}
	if len(q.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Col.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(sb, " LIMIT %d", q.Limit)
	}
}

func (p *Predicate) render(sb *strings.Builder) {
	if p.Exists {
		sb.WriteString("EXISTS (")
		p.Subquery.render(sb)
		sb.WriteByte(')')
		return
	}
	sb.WriteString(p.Col.String())
	switch p.Op {
	case OpBetween:
		sb.WriteString(" BETWEEN ")
		sb.WriteString(p.Lo.Render())
		sb.WriteString(" AND ")
		sb.WriteString(p.Hi.Render())
	case OpIn:
		sb.WriteString(" IN (")
		if p.Subquery != nil {
			p.Subquery.render(sb)
		} else {
			for i, v := range p.Values {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(v.Render())
			}
		}
		sb.WriteByte(')')
	default:
		sb.WriteByte(' ')
		sb.WriteString(p.Op.String())
		sb.WriteByte(' ')
		sb.WriteString(p.Value.Render())
	}
}
