package sqlgen

import (
	"strings"
	"testing"
)

func sampleQuery() *Query {
	return &Query{
		Select: []SelectItem{
			{Col: ColumnRef{Table: "i", Column: "i_category"}},
			{Agg: AggSum, Col: ColumnRef{Table: "ss", Column: "ss_ext_sales_price"}},
			{Agg: AggCountStar},
		},
		From: []TableRef{
			{Table: "store_sales", Alias: "ss"},
			{Table: "item", Alias: "i"},
		},
		Joins: []JoinPred{
			{Left: ColumnRef{"ss", "ss_item_sk"}, Right: ColumnRef{"i", "i_item_sk"}, Op: OpEq},
		},
		Where: []Predicate{
			{Col: ColumnRef{"ss", "ss_quantity"}, Op: OpBetween, Lo: Literal{Value: 1}, Hi: Literal{Value: 10}},
			{Col: ColumnRef{"i", "i_category"}, Op: OpEq, Value: Literal{Value: 3, IsChar: true}},
		},
		GroupBy: []ColumnRef{{"i", "i_category"}},
		OrderBy: []OrderItem{{Col: ColumnRef{"i", "i_category"}}},
		Limit:   100,
	}
}

func TestRender(t *testing.T) {
	q := sampleQuery()
	sql := q.Render()
	want := "SELECT i.i_category, SUM(ss.ss_ext_sales_price), COUNT(*) FROM store_sales AS ss, item AS i " +
		"WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_quantity BETWEEN 1 AND 10 AND i.i_category = 'v3' " +
		"GROUP BY i.i_category ORDER BY i.i_category LIMIT 100"
	if sql != want {
		t.Errorf("Render mismatch:\n got: %s\nwant: %s", sql, want)
	}
}

func TestStats(t *testing.T) {
	q := sampleQuery()
	ts := q.Stats()
	if ts.JoinPreds != 1 || ts.EquijoinPreds != 1 || ts.NonEquijoinPreds != 0 {
		t.Errorf("join stats wrong: %+v", ts)
	}
	if ts.SelectionPreds != 2 || ts.EqualitySelections != 1 || ts.NonEqualitySelects != 1 {
		t.Errorf("selection stats wrong: %+v", ts)
	}
	if ts.SortColumns != 1 || ts.AggregationColumns != 2 {
		t.Errorf("sort/agg stats wrong: %+v", ts)
	}
	if ts.NestedSubqueries != 0 {
		t.Errorf("nested subqueries = %d", ts.NestedSubqueries)
	}
}

func TestStatsNestedSubquery(t *testing.T) {
	q := sampleQuery()
	q.Where = append(q.Where, Predicate{
		Col: ColumnRef{"ss", "ss_customer_sk"},
		Op:  OpIn,
		Subquery: &Query{
			Select: []SelectItem{{Col: ColumnRef{Column: "c_customer_sk"}}},
			From:   []TableRef{{Table: "customer"}},
			Where: []Predicate{
				{Col: ColumnRef{Column: "c_birth_year"}, Op: OpGt, Value: Literal{Value: 1980}},
			},
		},
	})
	ts := q.Stats()
	if ts.NestedSubqueries != 1 {
		t.Errorf("nested = %d, want 1", ts.NestedSubqueries)
	}
	// Selection predicates count across the whole statement: 2 outer + the
	// IN itself + 1 inner.
	if ts.SelectionPreds != 4 {
		t.Errorf("selections = %d, want 4", ts.SelectionPreds)
	}
	vec := ts.Vector()
	if len(vec) != 9 || len(TextStatNames()) != 9 {
		t.Errorf("vector length = %d", len(vec))
	}
	if vec[0] != 1 {
		t.Errorf("vector[0] = %v, want 1", vec[0])
	}
}

func TestTables(t *testing.T) {
	q := sampleQuery()
	q.Where = append(q.Where, Predicate{
		Col:      ColumnRef{"ss", "ss_store_sk"},
		Op:       OpIn,
		Subquery: &Query{Select: []SelectItem{{Col: ColumnRef{Column: "s_store_sk"}}}, From: []TableRef{{Table: "store"}}},
	})
	got := q.Tables()
	want := []string{"store_sales", "item", "store"}
	if len(got) != len(want) {
		t.Fatalf("Tables = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Tables[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestValidate(t *testing.T) {
	q := sampleQuery()
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}

	bad := sampleQuery()
	bad.Joins[0].Right.Table = "zz"
	if err := bad.Validate(); err == nil {
		t.Error("join to unknown alias accepted")
	}

	noSel := sampleQuery()
	noSel.Select = nil
	if err := noSel.Validate(); err == nil {
		t.Error("empty select accepted")
	}

	noFrom := sampleQuery()
	noFrom.From = nil
	if err := noFrom.Validate(); err == nil {
		t.Error("empty FROM accepted")
	}

	badGroup := sampleQuery()
	badGroup.GroupBy = nil
	if err := badGroup.Validate(); err == nil {
		t.Error("aggregate query with ungrouped plain column accepted")
	}

	dup := sampleQuery()
	dup.From[1].Alias = "ss"
	if err := dup.Validate(); err == nil {
		t.Error("duplicate alias accepted")
	}
}

func TestLiteralRender(t *testing.T) {
	if got := (Literal{Value: -82}).Render(); got != "-82" {
		t.Errorf("numeric literal = %q", got)
	}
	if got := (Literal{Value: 7, IsChar: true}).Render(); got != "'v7'" {
		t.Errorf("char literal = %q", got)
	}
	if got := (Literal{Value: 2450815}).Render(); got != "2450815" {
		t.Errorf("date literal = %q, want plain digits", got)
	}
}

func TestRenderInListAndExists(t *testing.T) {
	q := &Query{
		Select: []SelectItem{{Agg: AggCountStar}},
		From:   []TableRef{{Table: "item"}},
		Where: []Predicate{
			{Col: ColumnRef{Column: "i_category_id"}, Op: OpIn,
				Values: []Literal{{Value: 1}, {Value: 2}, {Value: 3}}},
			{Exists: true, Op: OpIn, Subquery: &Query{
				Select: []SelectItem{{Agg: AggCountStar}},
				From:   []TableRef{{Table: "store"}},
			}},
		},
	}
	sql := q.Render()
	if !strings.Contains(sql, "i_category_id IN (1, 2, 3)") {
		t.Errorf("IN list not rendered: %s", sql)
	}
	if !strings.Contains(sql, "EXISTS (SELECT COUNT(*) FROM store)") {
		t.Errorf("EXISTS not rendered: %s", sql)
	}
}

func TestCmpOpHelpers(t *testing.T) {
	if !OpEq.IsEquality() || OpNe.IsEquality() {
		t.Error("IsEquality wrong")
	}
	ops := []CmpOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpBetween, OpIn}
	want := []string{"=", "<>", "<", "<=", ">", ">=", "BETWEEN", "IN"}
	for i, op := range ops {
		if op.String() != want[i] {
			t.Errorf("op %d = %q, want %q", i, op.String(), want[i])
		}
	}
}

func TestHasAggregate(t *testing.T) {
	if (&Query{Select: []SelectItem{{Col: ColumnRef{Column: "a"}}}}).HasAggregate() {
		t.Error("plain column misdetected as aggregate")
	}
	if !(&Query{Select: []SelectItem{{Agg: AggMax, Col: ColumnRef{Column: "a"}}}}).HasAggregate() {
		t.Error("aggregate not detected")
	}
}
