package sqlparse

import (
	"reflect"
	"testing"

	"repro/internal/statutil"
	"repro/internal/workload"
)

// FuzzParseSQL fuzzes the parser with a corpus seeded from every workload
// template (the SQL the system actually generates) plus hand-picked edge
// cases. For any input the parser accepts, the parse→print→parse round
// trip must be stable: the printed form reparses to a structurally
// identical AST and printing is a fixed point. Inputs the parser rejects
// must be rejected without panicking.
func FuzzParseSQL(f *testing.F) {
	r := statutil.NewRNG(1, "fuzzseed")
	for _, tpl := range workload.TPCDSTemplates() {
		f.Add(tpl.Gen(r).Render())
	}
	for _, tpl := range workload.CustomerTemplates() {
		f.Add(tpl.Gen(r).Render())
	}
	f.Add("SELECT COUNT(*) FROM t")
	f.Add("SELECT a, SUM(b) FROM t WHERE a IN (1, 2) GROUP BY a ORDER BY a DESC LIMIT 5")
	f.Add("SELECT x.a FROM t x, u y WHERE x.a = y.b AND x.c BETWEEN 1 AND 2")
	f.Add("SELECT a FROM t WHERE a IN (SELECT b FROM u WHERE b > 0)")
	f.Add("SELECT")
	f.Add("SELECT ( FROM WHERE")
	f.Add("select a from t where a = 'v12'")
	f.Add("SELECT a FROM t WHERE a = -1.5e3")

	f.Fuzz(func(t *testing.T, sql string) {
		q, err := Parse(sql) // must never panic
		if err != nil {
			return
		}
		printed := q.Render()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted: %q", err, sql, printed)
		}
		if !reflect.DeepEqual(q, q2) {
			t.Fatalf("parse→print→parse changed the AST\ninput: %q\nprinted: %q", sql, printed)
		}
		if again := q2.Render(); again != printed {
			t.Fatalf("printing is not a fixed point\nfirst:  %q\nsecond: %q", printed, again)
		}
	})
}
