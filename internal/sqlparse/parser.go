package sqlparse

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/sqlgen"
)

// Parse parses a SELECT statement in the sqlgen dialect and returns its AST.
func Parse(src string) (*sqlgen.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sqlparse: trailing input at %q", p.peek())
	}
	return q, nil
}

// TextStats parses src and returns the nine SQL-text statistics of
// Sec. VI-D.1 of the paper.
func TextStats(src string) (sqlgen.TextStats, error) {
	q, err := Parse(src)
	if err != nil {
		return sqlgen.TextStats{}, err
	}
	return q.Stats(), nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return token{kind: tokEOF}
}
func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlparse: expected %s, found %q", kw, p.peek())
	}
	return nil
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.peek().kind != kind {
		return token{}, fmt.Errorf("sqlparse: expected %s, found %q", what, p.peek())
	}
	return p.advance(), nil
}

var aggNames = map[string]sqlgen.AggFunc{
	"COUNT": sqlgen.AggCount,
	"SUM":   sqlgen.AggSum,
	"AVG":   sqlgen.AggAvg,
	"MIN":   sqlgen.AggMin,
	"MAX":   sqlgen.AggMax,
}

var reservedWords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"GROUP": true, "ORDER": true, "BY": true, "LIMIT": true,
	"AS": true, "IN": true, "BETWEEN": true, "EXISTS": true, "DESC": true,
}

func (p *parser) parseQuery() (*sqlgen.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &sqlgen.Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, tref)
		if p.peek().kind != tokComma {
			break
		}
		p.advance()
	}
	if p.acceptKeyword("WHERE") {
		for {
			if err := p.parseCondition(q); err != nil {
				return nil, err
			}
			if !p.acceptKeyword("AND") {
				break
			}
		}
	}
	if p.isKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.isKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := sqlgen.OrderItem{Col: col}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			}
			q.OrderBy = append(q.OrderBy, item)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.acceptKeyword("LIMIT") {
		t, err := p.expect(tokNumber, "LIMIT count")
		if err != nil {
			return nil, err
		}
		q.Limit = int(t.num)
	}
	return q, nil
}

func (p *parser) parseSelectItem() (sqlgen.SelectItem, error) {
	t := p.peek()
	if t.kind == tokIdent {
		if agg, ok := aggNames[strings.ToUpper(t.text)]; ok && p.peek2().kind == tokLParen {
			p.advance() // agg name
			p.advance() // (
			if agg == sqlgen.AggCount && p.peek().kind == tokStar {
				p.advance()
				if _, err := p.expect(tokRParen, ")"); err != nil {
					return sqlgen.SelectItem{}, err
				}
				return sqlgen.SelectItem{Agg: sqlgen.AggCountStar}, nil
			}
			col, err := p.parseColumnRef()
			if err != nil {
				return sqlgen.SelectItem{}, err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return sqlgen.SelectItem{}, err
			}
			return sqlgen.SelectItem{Agg: agg, Col: col}, nil
		}
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return sqlgen.SelectItem{}, err
	}
	return sqlgen.SelectItem{Col: col}, nil
}

func (p *parser) parseTableRef() (sqlgen.TableRef, error) {
	t, err := p.expect(tokIdent, "table name")
	if err != nil {
		return sqlgen.TableRef{}, err
	}
	ref := sqlgen.TableRef{Table: t.text}
	if p.acceptKeyword("AS") {
		a, err := p.expect(tokIdent, "alias")
		if err != nil {
			return sqlgen.TableRef{}, err
		}
		ref.Alias = a.text
	} else if p.peek().kind == tokIdent && !reservedWords[strings.ToUpper(p.peek().text)] {
		ref.Alias = p.advance().text
	}
	return ref, nil
}

func (p *parser) parseColumnRef() (sqlgen.ColumnRef, error) {
	t, err := p.expect(tokIdent, "column reference")
	if err != nil {
		return sqlgen.ColumnRef{}, err
	}
	if reservedWords[strings.ToUpper(t.text)] {
		return sqlgen.ColumnRef{}, fmt.Errorf("sqlparse: reserved word %q used as identifier", t.text)
	}
	if p.peek().kind == tokDot {
		p.advance()
		c, err := p.expect(tokIdent, "column name after '.'")
		if err != nil {
			return sqlgen.ColumnRef{}, err
		}
		return sqlgen.ColumnRef{Table: t.text, Column: c.text}, nil
	}
	return sqlgen.ColumnRef{Column: t.text}, nil
}

func (p *parser) parseLiteral() (sqlgen.Literal, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		return sqlgen.Literal{Value: t.num}, nil
	case tokString:
		p.advance()
		v, err := parseCharCode(t.text)
		if err != nil {
			return sqlgen.Literal{}, err
		}
		return sqlgen.Literal{Value: v, IsChar: true}, nil
	default:
		return sqlgen.Literal{}, fmt.Errorf("sqlparse: expected literal, found %q", t)
	}
}

// parseCharCode decodes the dictionary-code string form "vNNN" used by the
// synthetic dialect; any other string hashes to a stable code so that
// hand-written SQL still parses.
func parseCharCode(s string) (float64, error) {
	if len(s) >= 2 && s[0] == 'v' {
		if n, err := strconv.ParseInt(s[1:], 10, 64); err == nil {
			return float64(n), nil
		}
	}
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return math.Abs(float64(h % 100000)), nil
}

func (p *parser) parseCondition(q *sqlgen.Query) error {
	if p.isKeyword("EXISTS") {
		p.advance()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return err
		}
		sub, err := p.parseQuery()
		if err != nil {
			return err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return err
		}
		q.Where = append(q.Where, sqlgen.Predicate{Op: sqlgen.OpIn, Exists: true, Subquery: sub})
		return nil
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return err
	}
	t := p.peek()
	switch {
	case t.kind == tokIdent && strings.EqualFold(t.text, "BETWEEN"):
		p.advance()
		lo, err := p.parseLiteral()
		if err != nil {
			return err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return err
		}
		q.Where = append(q.Where, sqlgen.Predicate{Col: col, Op: sqlgen.OpBetween, Lo: lo, Hi: hi})
		return nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "IN"):
		p.advance()
		if _, err := p.expect(tokLParen, "("); err != nil {
			return err
		}
		if p.isKeyword("SELECT") {
			sub, err := p.parseQuery()
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return err
			}
			q.Where = append(q.Where, sqlgen.Predicate{Col: col, Op: sqlgen.OpIn, Subquery: sub})
			return nil
		}
		var vals []sqlgen.Literal
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return err
			}
			vals = append(vals, v)
			if p.peek().kind != tokComma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return err
		}
		q.Where = append(q.Where, sqlgen.Predicate{Col: col, Op: sqlgen.OpIn, Values: vals})
		return nil
	}
	var op sqlgen.CmpOp
	switch t.kind {
	case tokEq:
		op = sqlgen.OpEq
	case tokNe:
		op = sqlgen.OpNe
	case tokLt:
		op = sqlgen.OpLt
	case tokLe:
		op = sqlgen.OpLe
	case tokGt:
		op = sqlgen.OpGt
	case tokGe:
		op = sqlgen.OpGe
	default:
		return fmt.Errorf("sqlparse: expected comparison operator, found %q", t)
	}
	p.advance()
	// Identifier on the right-hand side means a join predicate; a literal
	// means a selection predicate.
	if p.peek().kind == tokIdent && !reservedWords[strings.ToUpper(p.peek().text)] {
		right, err := p.parseColumnRef()
		if err != nil {
			return err
		}
		q.Joins = append(q.Joins, sqlgen.JoinPred{Left: col, Right: right, Op: op})
		return nil
	}
	lit, err := p.parseLiteral()
	if err != nil {
		return err
	}
	q.Where = append(q.Where, sqlgen.Predicate{Col: col, Op: op, Value: lit})
	return nil
}
