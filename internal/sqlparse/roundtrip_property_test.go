package sqlparse

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/sqlgen"
	"repro/internal/statutil"
)

// randQuery builds a random valid AST: random tables/columns/aliases,
// random predicate shapes, optional subquery, grouping and ordering.
func randQuery(r *statutil.RNG, allowSub bool) *sqlgen.Query {
	tables := []string{"t1", "t2", "t3"}
	cols := []string{"a", "b", "c", "d"}
	nFrom := r.IntBetween(1, 3)
	q := &sqlgen.Query{}
	names := make([]string, nFrom)
	for i := 0; i < nFrom; i++ {
		ref := sqlgen.TableRef{Table: tables[i]}
		if r.Intn(2) == 0 {
			ref.Alias = string(rune('x' + i))
		}
		q.From = append(q.From, ref)
		names[i] = ref.Name()
	}
	col := func() sqlgen.ColumnRef {
		return sqlgen.ColumnRef{Table: names[r.Intn(nFrom)], Column: cols[r.Intn(len(cols))]}
	}
	lit := func() sqlgen.Literal {
		if r.Intn(3) == 0 {
			return sqlgen.Literal{Value: float64(r.IntBetween(0, 500)), IsChar: true}
		}
		v := r.Uniform(-100, 100)
		if r.Intn(2) == 0 {
			v = float64(int(v))
		}
		return sqlgen.Literal{Value: v}
	}

	// Select list: aggregates or plain columns (plain columns also go to
	// GROUP BY so the query validates).
	nSel := r.IntBetween(1, 3)
	hasAgg := false
	for i := 0; i < nSel; i++ {
		switch r.Intn(4) {
		case 0:
			q.Select = append(q.Select, sqlgen.SelectItem{Agg: sqlgen.AggCountStar})
			hasAgg = true
		case 1:
			q.Select = append(q.Select, sqlgen.SelectItem{Agg: sqlgen.AggSum, Col: col()})
			hasAgg = true
		default:
			c := col()
			q.Select = append(q.Select, sqlgen.SelectItem{Col: c})
			q.GroupBy = append(q.GroupBy, c)
		}
	}
	if !hasAgg {
		q.GroupBy = nil // plain projection needs no grouping
	}

	// Joins between consecutive FROM entries.
	ops := []sqlgen.CmpOp{sqlgen.OpEq, sqlgen.OpLt, sqlgen.OpLe, sqlgen.OpGt, sqlgen.OpGe, sqlgen.OpNe}
	for i := 1; i < nFrom; i++ {
		if r.Intn(2) == 0 {
			q.Joins = append(q.Joins, sqlgen.JoinPred{
				Left:  sqlgen.ColumnRef{Table: names[i-1], Column: cols[r.Intn(len(cols))]},
				Right: sqlgen.ColumnRef{Table: names[i], Column: cols[r.Intn(len(cols))]},
				Op:    ops[r.Intn(len(ops))],
			})
		}
	}

	// Selection predicates.
	nPred := r.IntBetween(0, 3)
	for i := 0; i < nPred; i++ {
		switch r.Intn(4) {
		case 0:
			lo := lit()
			span := r.Uniform(0, 50)
			if lo.IsChar {
				// Char literals are dictionary codes: keep them integral
				// so rendering does not truncate.
				span = float64(r.IntBetween(0, 50))
			}
			hi := sqlgen.Literal{Value: lo.Value + span, IsChar: lo.IsChar}
			q.Where = append(q.Where, sqlgen.Predicate{Col: col(), Op: sqlgen.OpBetween, Lo: lo, Hi: hi})
		case 1:
			vals := []sqlgen.Literal{lit(), lit()}
			q.Where = append(q.Where, sqlgen.Predicate{Col: col(), Op: sqlgen.OpIn, Values: vals})
		case 2:
			if allowSub {
				q.Where = append(q.Where, sqlgen.Predicate{Col: col(), Op: sqlgen.OpIn, Subquery: randQuery(r, false)})
				continue
			}
			fallthrough
		default:
			q.Where = append(q.Where, sqlgen.Predicate{Col: col(), Op: ops[r.Intn(len(ops))], Value: lit()})
		}
	}

	if r.Intn(2) == 0 {
		q.OrderBy = append(q.OrderBy, sqlgen.OrderItem{Col: col(), Desc: r.Intn(2) == 0})
	}
	if r.Intn(3) == 0 {
		q.Limit = r.IntBetween(1, 1000)
	}
	return q
}

// TestRandomASTRoundTripProperty: any AST the generator produces renders
// to SQL that parses back to a structurally identical AST, and rendering
// is a fixed point.
func TestRandomASTRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := statutil.NewRNG(seed, "astfuzz")
		q := randQuery(r, true)
		if err := q.Validate(); err != nil {
			t.Logf("generator produced invalid AST: %v", err)
			return false
		}
		sql := q.Render()
		parsed, err := Parse(sql)
		if err != nil {
			t.Logf("parse error: %v\nSQL: %s", err, sql)
			return false
		}
		if !reflect.DeepEqual(q, parsed) {
			t.Logf("round trip mismatch:\nSQL: %s", sql)
			return false
		}
		return parsed.Render() == sql
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRandomASTTextStatsConsistency: text statistics computed from the AST
// and from the parsed-back SQL must agree.
func TestRandomASTTextStatsConsistency(t *testing.T) {
	prop := func(seed int64) bool {
		r := statutil.NewRNG(seed, "statfuzz")
		q := randQuery(r, true)
		fromText, err := TextStats(q.Render())
		if err != nil {
			return false
		}
		return fromText == q.Stats()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
