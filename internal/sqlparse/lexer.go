// Package sqlparse implements a lexer and recursive-descent parser for the
// SQL dialect emitted by sqlgen. It exists so that the SQL-text feature
// vector (Sec. VI-D.1 of the paper) can be computed from query *text* the
// way a real deployment would — by parsing the statement — and so that
// rendered queries round-trip back to identical ASTs (tested property).
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokStar
	tokEq
	tokNe
	tokLt
	tokLe
	tokGt
	tokGe
)

type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokNumber:
		return t.text
	case tokString:
		return "'" + t.text + "'"
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits src into tokens.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", pos: start}, nil
	case c == '.':
		// Dot is either a qualifier separator or the start of a number like
		// ".5"; a digit after the dot disambiguates.
		if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
			return l.lexNumber()
		}
		l.pos++
		return token{kind: tokDot, text: ".", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '>' {
			l.pos++
			return token{kind: tokNe, text: "<>", pos: start}, nil
		}
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		return token{kind: tokLt, text: "<", pos: start}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		return token{kind: tokGt, text: ">", pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("sqlparse: unterminated string at offset %d", start)
		}
		l.pos++
		return token{kind: tokString, text: sb.String(), pos: start}, nil
	case c == '-' || c == '+' || isDigit(c):
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' || l.src[l.pos] == '+' {
		l.pos++
	}
	seenDigit := false
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
		seenDigit = true
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
			seenDigit = true
		}
	}
	if !seenDigit {
		return token{}, fmt.Errorf("sqlparse: malformed number at offset %d", start)
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '-' || l.src[l.pos] == '+') {
			l.pos++
		}
		expDigits := false
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
			expDigits = true
		}
		if !expDigits {
			l.pos = save // "e" belonged to something else
		}
	}
	text := l.src[start:l.pos]
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, fmt.Errorf("sqlparse: bad number %q at offset %d: %v", text, start, err)
	}
	return token{kind: tokNumber, text: text, num: v, pos: start}, nil
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}
func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c)
}
