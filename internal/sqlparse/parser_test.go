package sqlparse

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sqlgen"
)

func TestParseSimple(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM store_sales WHERE ss_quantity > 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0].Agg != sqlgen.AggCountStar {
		t.Errorf("select wrong: %+v", q.Select)
	}
	if len(q.From) != 1 || q.From[0].Table != "store_sales" {
		t.Errorf("from wrong: %+v", q.From)
	}
	if len(q.Where) != 1 || q.Where[0].Op != sqlgen.OpGt || q.Where[0].Value.Value != 5 {
		t.Errorf("where wrong: %+v", q.Where)
	}
}

func TestParseJoinVsSelection(t *testing.T) {
	q, err := Parse("SELECT a.x FROM t1 AS a, t2 AS b WHERE a.k = b.k AND a.x = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %+v", q.Joins)
	}
	if q.Joins[0].Left.String() != "a.k" || q.Joins[0].Right.String() != "b.k" {
		t.Errorf("join refs wrong: %+v", q.Joins[0])
	}
	if len(q.Where) != 1 || q.Where[0].Col.String() != "a.x" {
		t.Errorf("selection wrong: %+v", q.Where)
	}
}

func TestParseNonEquijoin(t *testing.T) {
	q, err := Parse("SELECT a.x FROM t1 AS a, t2 AS b WHERE a.k <= b.k")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 1 || q.Joins[0].Op != sqlgen.OpLe {
		t.Errorf("non-equijoin wrong: %+v", q.Joins)
	}
	st := q.Stats()
	if st.NonEquijoinPreds != 1 || st.EquijoinPreds != 0 {
		t.Errorf("stats wrong: %+v", st)
	}
}

func TestParseBetweenAndIn(t *testing.T) {
	q, err := Parse("SELECT x FROM t WHERE x BETWEEN 2 AND 8 AND y IN (1, 2, 3) AND z = 'v9'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 3 {
		t.Fatalf("where count = %d", len(q.Where))
	}
	b := q.Where[0]
	if b.Op != sqlgen.OpBetween || b.Lo.Value != 2 || b.Hi.Value != 8 {
		t.Errorf("between wrong: %+v", b)
	}
	in := q.Where[1]
	if in.Op != sqlgen.OpIn || len(in.Values) != 3 || in.Values[2].Value != 3 {
		t.Errorf("in wrong: %+v", in)
	}
	ch := q.Where[2]
	if !ch.Value.IsChar || ch.Value.Value != 9 {
		t.Errorf("char literal wrong: %+v", ch)
	}
}

func TestParseSubqueries(t *testing.T) {
	src := "SELECT COUNT(*) FROM t1 WHERE k IN (SELECT k FROM t2 WHERE v > 10) AND EXISTS (SELECT j FROM t3)"
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("where count = %d", len(q.Where))
	}
	if q.Where[0].Subquery == nil || q.Where[0].Subquery.From[0].Table != "t2" {
		t.Errorf("IN subquery wrong: %+v", q.Where[0])
	}
	if !q.Where[1].Exists || q.Where[1].Subquery.From[0].Table != "t3" {
		t.Errorf("EXISTS wrong: %+v", q.Where[1])
	}
	st := q.Stats()
	if st.NestedSubqueries != 2 {
		t.Errorf("nested = %d, want 2", st.NestedSubqueries)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	q, err := Parse("SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g DESC, h LIMIT 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].Column != "g" {
		t.Errorf("group wrong: %+v", q.GroupBy)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order wrong: %+v", q.OrderBy)
	}
	if q.Limit != 50 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseImplicitAlias(t *testing.T) {
	q, err := Parse("SELECT a.x FROM t1 a WHERE a.x < 3")
	if err != nil {
		t.Fatal(err)
	}
	if q.From[0].Alias != "a" {
		t.Errorf("implicit alias not parsed: %+v", q.From[0])
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("select x from t where x > 1 order by x limit 5"); err != nil {
		t.Errorf("lowercase keywords rejected: %v", err)
	}
}

func TestParseNumbers(t *testing.T) {
	q, err := Parse("SELECT x FROM t WHERE a = -82 AND b = 2.5 AND c = 1e+10 AND d = .5")
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{-82, 2.5, 1e10, 0.5}
	for i, p := range q.Where {
		if p.Value.Value != vals[i] {
			t.Errorf("value %d = %v, want %v", i, p.Value.Value, vals[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT x",
		"SELECT x FROM",
		"SELECT x FROM t WHERE",
		"SELECT x FROM t WHERE x",
		"SELECT x FROM t WHERE x BETWEEN 1",
		"SELECT x FROM t WHERE x IN",
		"SELECT x FROM t WHERE x IN (1,",
		"SELECT x FROM t trailing junk (",
		"SELECT x FROM t WHERE x = 'unterminated",
		"SELECT x FROM t WHERE x @ 3",
		"SELECT x FROM t WHERE SELECT = 3",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseUnknownStringHashesStably(t *testing.T) {
	q1, err := Parse("SELECT x FROM t WHERE s = 'hello'")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse("SELECT x FROM t WHERE s = 'hello'")
	if err != nil {
		t.Fatal(err)
	}
	if q1.Where[0].Value.Value != q2.Where[0].Value.Value {
		t.Error("string hash must be stable")
	}
	if q1.Where[0].Value.Value < 0 {
		t.Error("hash code must be nonnegative")
	}
}

// TestRoundTrip checks Render→Parse→Render is a fixed point and the parsed
// AST matches the original structure.
func TestRoundTrip(t *testing.T) {
	cases := []*sqlgen.Query{
		{
			Select: []sqlgen.SelectItem{{Agg: sqlgen.AggCountStar}},
			From:   []sqlgen.TableRef{{Table: "t"}},
		},
		{
			Select: []sqlgen.SelectItem{
				{Col: sqlgen.ColumnRef{Table: "a", Column: "x"}},
				{Agg: sqlgen.AggAvg, Col: sqlgen.ColumnRef{Table: "b", Column: "y"}},
			},
			From: []sqlgen.TableRef{{Table: "t1", Alias: "a"}, {Table: "t2", Alias: "b"}},
			Joins: []sqlgen.JoinPred{
				{Left: sqlgen.ColumnRef{Table: "a", Column: "k"}, Right: sqlgen.ColumnRef{Table: "b", Column: "k"}, Op: sqlgen.OpEq},
				{Left: sqlgen.ColumnRef{Table: "a", Column: "d"}, Right: sqlgen.ColumnRef{Table: "b", Column: "d"}, Op: sqlgen.OpLt},
			},
			Where: []sqlgen.Predicate{
				{Col: sqlgen.ColumnRef{Table: "a", Column: "p"}, Op: sqlgen.OpBetween, Lo: sqlgen.Literal{Value: 1}, Hi: sqlgen.Literal{Value: 5}},
				{Col: sqlgen.ColumnRef{Table: "b", Column: "c"}, Op: sqlgen.OpEq, Value: sqlgen.Literal{Value: 42, IsChar: true}},
				{Col: sqlgen.ColumnRef{Table: "a", Column: "q"}, Op: sqlgen.OpIn, Values: []sqlgen.Literal{{Value: 1}, {Value: 2}}},
			},
			GroupBy: []sqlgen.ColumnRef{{Table: "a", Column: "x"}},
			OrderBy: []sqlgen.OrderItem{{Col: sqlgen.ColumnRef{Table: "a", Column: "x"}, Desc: true}},
			Limit:   10,
		},
		{
			Select: []sqlgen.SelectItem{{Agg: sqlgen.AggSum, Col: sqlgen.ColumnRef{Column: "v"}}},
			From:   []sqlgen.TableRef{{Table: "f"}},
			Where: []sqlgen.Predicate{
				{Col: sqlgen.ColumnRef{Column: "k"}, Op: sqlgen.OpIn, Subquery: &sqlgen.Query{
					Select: []sqlgen.SelectItem{{Col: sqlgen.ColumnRef{Column: "k"}}},
					From:   []sqlgen.TableRef{{Table: "d"}},
					Where: []sqlgen.Predicate{
						{Col: sqlgen.ColumnRef{Column: "year"}, Op: sqlgen.OpGe, Value: sqlgen.Literal{Value: 2000}},
					},
				}},
			},
		},
	}
	for i, q := range cases {
		sql := q.Render()
		parsed, err := Parse(sql)
		if err != nil {
			t.Fatalf("case %d: parse error: %v\nSQL: %s", i, err, sql)
		}
		if !reflect.DeepEqual(q, parsed) {
			t.Errorf("case %d: AST round trip mismatch\nSQL: %s\n got: %#v\nwant: %#v", i, sql, parsed, q)
		}
		if again := parsed.Render(); again != sql {
			t.Errorf("case %d: render not a fixed point:\n1st: %s\n2nd: %s", i, sql, again)
		}
	}
}

func TestTextStatsFromText(t *testing.T) {
	src := "SELECT COUNT(*) FROM t1 AS a, t2 AS b WHERE a.k = b.k AND a.x > 3 ORDER BY a.x"
	ts, err := TextStats(src)
	if err != nil {
		t.Fatal(err)
	}
	if ts.JoinPreds != 1 || ts.SelectionPreds != 1 || ts.SortColumns != 1 || ts.AggregationColumns != 1 {
		t.Errorf("stats wrong: %+v", ts)
	}
	if _, err := TextStats("not sql"); err == nil {
		t.Error("TextStats on garbage should error")
	}
	if !strings.Contains(src, "WHERE") {
		t.Error("sanity")
	}
}
