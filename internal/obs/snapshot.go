package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/eval"
)

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	UpperEdge float64 `json:"upper_edge"`
	Count     int64   `json:"count"`
}

// HistogramSnapshot summarizes one histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// StageSnapshot summarizes one span-timer stage.
type StageSnapshot struct {
	Name     string  `json:"name"`
	Count    int64   `json:"count"`
	TotalSec float64 `json:"total_sec"`
	MeanSec  float64 `json:"mean_sec"`
	MaxSec   float64 `json:"max_sec"`
}

// Snapshot is a point-in-time copy of every registered instrument. Maps
// marshal with sorted keys and Stages is sorted by name, so the JSON form
// is deterministic given deterministic metric values.
type Snapshot struct {
	Enabled    bool                         `json:"enabled"`
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Totals     map[string]float64           `json:"totals"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Stages     []StageSnapshot              `json:"stages"`
}

// Take collects the current value of every instrument.
func Take() Snapshot {
	s := Snapshot{
		Enabled:    Enabled(),
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Totals:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	totals.Range(func(k, v any) bool {
		s.Totals[k.(string)] = v.(*FloatTotal).Value()
		return true
	})
	hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		hs := HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
		for i := range h.buckets {
			if c := h.buckets[i].Load(); c > 0 {
				hs.Buckets = append(hs.Buckets, BucketCount{UpperEdge: UpperEdge(i), Count: c})
			}
		}
		s.Histograms[k.(string)] = hs
		return true
	})
	stages.Range(func(k, v any) bool {
		st := v.(*Stage)
		n := st.Count()
		if n == 0 {
			// Registered but never fired (or zeroed by Reset): noise in
			// the snapshot and the timings table.
			return true
		}
		ss := StageSnapshot{
			Name:     k.(string),
			Count:    n,
			TotalSec: st.Total().Seconds(),
			MaxSec:   st.Max().Seconds(),
		}
		if n > 0 {
			ss.MeanSec = ss.TotalSec / float64(n)
		}
		s.Stages = append(s.Stages, ss)
		return true
	})
	sort.Slice(s.Stages, func(i, j int) bool { return s.Stages[i].Name < s.Stages[j].Name })
	return s
}

// JSON returns the indented JSON encoding of Take().
func JSON() []byte {
	out, err := json.MarshalIndent(Take(), "", "  ")
	if err != nil {
		return []byte(fmt.Sprintf(`{"error": %q}`, err.Error()))
	}
	return out
}

// TimingsTable renders the per-stage timing tree as an aligned text table
// (via the eval package's table renderer). Stages sort by their dotted
// names, children indented under parents; the self column is a stage's
// total minus the totals of its direct children, when it has any.
func TimingsTable() string {
	s := Take()
	if len(s.Stages) == 0 {
		return "no stage timings recorded (enable with obs.SetEnabled or the -timings flag)\n"
	}
	totalByName := map[string]float64{}
	for _, st := range s.Stages {
		totalByName[st.Name] = st.TotalSec
	}
	childSum := map[string]float64{}
	for _, st := range s.Stages {
		if i := strings.LastIndex(st.Name, "."); i > 0 {
			parent := st.Name[:i]
			if _, ok := totalByName[parent]; ok {
				childSum[parent] += st.TotalSec
			}
		}
	}
	rows := make([][]string, 0, len(s.Stages))
	for _, st := range s.Stages {
		indent := strings.Repeat("  ", strings.Count(st.Name, "."))
		self := st.TotalSec
		if cs, ok := childSum[st.Name]; ok {
			self -= cs
		}
		rows = append(rows, []string{
			indent + st.Name,
			fmt.Sprintf("%d", st.Count),
			fmt.Sprintf("%.4f", st.TotalSec),
			fmt.Sprintf("%.4f", self),
			fmt.Sprintf("%.3f", st.MeanSec*1e3),
			fmt.Sprintf("%.3f", st.MaxSec*1e3),
		})
	}
	return eval.Table(
		[]string{"stage", "calls", "total_s", "self_s", "mean_ms", "max_ms"},
		rows,
	)
}
