package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeFloatTotal(t *testing.T) {
	Reset()
	c := GetCounter("test.counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if GetCounter("test.counter") != c {
		t.Error("registry returned a different counter for the same name")
	}
	g := GetGauge("test.gauge")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %d, want 5", g.Value())
	}
	ft := GetFloatTotal("test.total")
	ft.Add(0.5)
	ft.Add(0.25)
	if ft.Value() != 0.75 {
		t.Errorf("float total = %v, want 0.75", ft.Value())
	}
	Reset()
	if c.Value() != 0 || g.Value() != 0 || ft.Value() != 0 {
		t.Error("Reset did not zero instruments")
	}
	if GetCounter("test.counter") != c {
		t.Error("Reset replaced instruments instead of zeroing in place")
	}
}

func TestHistogramBucketEdgesDeterministic(t *testing.T) {
	// Each observation must land in the bucket whose (lo, hi] range
	// contains it, with hi = UpperEdge(i).
	for _, v := range []float64{1e-12, 1e-9, 1.5e-9, 1, 2, 999, 1e8, 1e12, math.Inf(1)} {
		i := bucketIndex(v)
		if i < 0 || i >= histNumBuckets {
			t.Fatalf("bucketIndex(%v) = %d out of range", v, i)
		}
		hi := UpperEdge(i)
		if v > hi && !math.IsInf(v, 1) {
			t.Errorf("value %v above its bucket's upper edge %v", v, hi)
		}
		if i > 0 {
			lo := UpperEdge(i - 1)
			if v <= lo && !math.IsInf(v, 1) {
				t.Errorf("value %v at or below the previous edge %v (bucket %d)", v, lo, i)
			}
		}
	}
	// Exact powers of ten sit at their decade's closing edge.
	if got := UpperEdge(bucketIndex(1.0)); got != 1.0 {
		t.Errorf("UpperEdge(bucketIndex(1)) = %v, want exactly 1", got)
	}
	// Nonpositive and NaN go to the underflow bucket.
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(-1)} {
		if bucketIndex(v) != 0 {
			t.Errorf("bucketIndex(%v) = %d, want underflow bucket 0", v, bucketIndex(v))
		}
	}
	if last := UpperEdge(histNumBuckets - 1); last != math.MaxFloat64 {
		t.Errorf("overflow edge = %v, want MaxFloat64", last)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := &Histogram{}
	for _, v := range []float64{0.001, 0.002, 0.004, 0.008, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.515) > 1e-12 {
		t.Errorf("sum = %v", h.Sum())
	}
	if math.Abs(h.Mean()-0.103) > 1e-12 {
		t.Errorf("mean = %v", h.Mean())
	}
	// The median observation is 0.004; the reported quantile is its
	// bucket's upper edge, so it must bracket the value from above within
	// one bucket width (factor 10^(1/4)).
	p50 := h.Quantile(0.5)
	if p50 < 0.004 || p50 > 0.004*math.Pow(10, 0.25)+1e-15 {
		t.Errorf("p50 = %v, want in (0.004, 0.004*10^0.25]", p50)
	}
	if q := h.Quantile(1); q < 0.5 {
		t.Errorf("p100 = %v below max observation", q)
	}
	// NaN/Inf observations count but do not poison the sum.
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if h.Count() != 7 || math.IsNaN(h.Sum()) || math.IsInf(h.Sum(), 0) {
		t.Errorf("count=%d sum=%v after non-finite observations", h.Count(), h.Sum())
	}
	empty := &Histogram{}
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram quantile/mean should be 0")
	}
}

func TestSpanAggregation(t *testing.T) {
	Reset()
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	for i := 0; i < 3; i++ {
		stop := Span("test.stage")
		time.Sleep(time.Millisecond)
		stop()
	}
	st := GetStage("test.stage")
	if st.Count() != 3 {
		t.Fatalf("stage count = %d, want 3", st.Count())
	}
	if st.Total() <= 0 || st.Max() <= 0 || st.Max() > st.Total() {
		t.Errorf("total=%v max=%v", st.Total(), st.Max())
	}
}

func TestDisabledSpanIsNoop(t *testing.T) {
	Reset()
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	Span("test.disabled")()
	if GetStage("test.disabled").Count() != 0 {
		t.Error("disabled span recorded a timing")
	}
	h := GetHistogram("test.disabled.hist")
	h.Time()()
	if h.Count() != 0 {
		t.Error("disabled histogram timer recorded")
	}
	// Counters are always live: they are one atomic add, not a clock read.
	GetCounter("test.disabled.counter").Inc()
	if GetCounter("test.disabled.counter").Value() != 1 {
		t.Error("counter did not record while disabled")
	}
}

func TestDisabledSpanAllocFree(t *testing.T) {
	Reset()
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	allocs := testing.AllocsPerRun(100, func() {
		Span("test.allocfree")()
	})
	if allocs != 0 {
		t.Errorf("disabled Span allocates %v times per call, want 0", allocs)
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	Reset()
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	GetCounter("snap.counter").Add(2)
	GetGauge("snap.gauge").Set(9)
	GetFloatTotal("snap.total").Add(1.5)
	GetHistogram("snap.hist").Observe(0.01)
	Span("snap.stage")()
	s := Take()
	if !s.Enabled || s.Counters["snap.counter"] != 2 || s.Gauges["snap.gauge"] != 9 || s.Totals["snap.total"] != 1.5 {
		t.Errorf("snapshot scalars wrong: %+v", s)
	}
	hs, ok := s.Histograms["snap.hist"]
	if !ok || hs.Count != 1 || len(hs.Buckets) != 1 {
		t.Errorf("snapshot histogram wrong: %+v", hs)
	}
	found := false
	for _, st := range s.Stages {
		if st.Name == "snap.stage" && st.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Error("snapshot missing stage")
	}
	out := JSON()
	for _, want := range []string{"snap.counter", "snap.gauge", "snap.total", "snap.hist", "snap.stage"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
}

func TestTimingsTable(t *testing.T) {
	Reset()
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	if !strings.Contains(TimingsTable(), "no stage timings") {
		t.Error("empty table should say so")
	}
	for _, name := range []string{"train", "train.kernel", "train.eigen", "predict"} {
		stop := Span(name)
		time.Sleep(time.Millisecond)
		stop()
	}
	tbl := TimingsTable()
	for _, want := range []string{"stage", "calls", "total_s", "self_s", "train", "  train.kernel", "  train.eigen", "predict"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("timings table missing %q:\n%s", want, tbl)
		}
	}
}
