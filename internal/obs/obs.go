// Package obs is the repository's stdlib-only observability layer:
// counters, gauges, float totals, fixed-log-bucket histograms, and span
// timers that aggregate into a per-stage timing tree. The numeric packages
// (parallel, kernels, linalg, kcca, knn, core, exec) record into it from
// their hot paths, and the commands expose the collected state as a JSON
// snapshot (Take/JSON), a human-readable stage table (TimingsTable), and an
// optional HTTP endpoint with expvar and pprof (ServeMetrics).
//
// Cost contract: every instrument is a fixed atomic update — no locks and
// no allocation on the record path — so instrumentation can stay compiled
// into the hot loops. Instruments that must read the clock (Span,
// Histogram.Time) additionally consult the package enable flag and return a
// shared no-op when disabled, so a non-observed run performs no timing work
// at all. Recording never feeds back into the instrumented computation, so
// the bit-for-bit serial/parallel equivalence guarantees of the numeric
// packages hold with instrumentation on or off.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// enabled gates the clock-reading instruments (spans and histogram
// timers). Counters, gauges, histograms and float totals always record;
// they are single atomic operations.
var enabled atomic.Bool

// SetEnabled turns timing instrumentation on or off and returns the
// previous state, so callers can restore it:
//
//	defer obs.SetEnabled(obs.SetEnabled(true))
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether timing instrumentation is on.
func Enabled() bool { return enabled.Load() }

// noop is the shared do-nothing stop function returned by disabled timers;
// returning it allocates nothing.
var noop = func() {}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous integer value (pool width, queue depth).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// FloatTotal is a float64 accumulator (e.g. seconds of simulated operator
// cost), updated with a compare-and-swap loop on the bit pattern.
type FloatTotal struct{ bits atomic.Uint64 }

// Add accumulates v.
func (f *FloatTotal) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current total.
func (f *FloatTotal) Value() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *FloatTotal) reset() { f.bits.Store(0) }

// The default registry. Instruments are created on first Get and live for
// the life of the process, so packages can capture them in package-level
// variables and pay only the atomic update per event.
var (
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	totals   sync.Map // string -> *FloatTotal
	hists    sync.Map // string -> *Histogram
	stages   sync.Map // string -> *Stage
)

// GetCounter returns the named counter, creating it if needed.
func GetCounter(name string) *Counter {
	if v, ok := counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// GetGauge returns the named gauge, creating it if needed.
func GetGauge(name string) *Gauge {
	if v, ok := gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// GetFloatTotal returns the named float total, creating it if needed.
func GetFloatTotal(name string) *FloatTotal {
	if v, ok := totals.Load(name); ok {
		return v.(*FloatTotal)
	}
	v, _ := totals.LoadOrStore(name, &FloatTotal{})
	return v.(*FloatTotal)
}

// GetHistogram returns the named histogram, creating it if needed.
func GetHistogram(name string) *Histogram {
	if v, ok := hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := hists.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// GetStage returns the named span-timer stage, creating it if needed.
func GetStage(name string) *Stage {
	if v, ok := stages.Load(name); ok {
		return v.(*Stage)
	}
	v, _ := stages.LoadOrStore(name, &Stage{})
	return v.(*Stage)
}

// Reset zeroes every registered instrument in place. Instrument identity is
// preserved (package-level variables that captured an instrument keep
// recording into it), which is what test isolation needs.
func Reset() {
	counters.Range(func(_, v any) bool { v.(*Counter).reset(); return true })
	gauges.Range(func(_, v any) bool { v.(*Gauge).reset(); return true })
	totals.Range(func(_, v any) bool { v.(*FloatTotal).reset(); return true })
	hists.Range(func(_, v any) bool { v.(*Histogram).reset(); return true })
	stages.Range(func(_, v any) bool { v.(*Stage).reset(); return true })
}
