package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	obs.Reset()
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	// Exercise the instrument kinds the acceptance criteria name: pool,
	// predict latency, simulator.
	obs.GetGauge("parallel.pool.workers").Set(4)
	obs.GetHistogram("core.predict.seconds").Observe(0.002)
	obs.GetCounter("exec.simulate.queries").Add(100)
	obs.Span("kcca.train.eigen")()

	srv := httptest.NewServer(obs.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v", err)
	}
	if snap.Gauges["parallel.pool.workers"] != 4 {
		t.Errorf("pool gauge missing from snapshot: %v", snap.Gauges)
	}
	if snap.Histograms["core.predict.seconds"].Count != 1 {
		t.Error("predict latency histogram missing from snapshot")
	}
	if snap.Counters["exec.simulate.queries"] != 100 {
		t.Error("simulator counter missing from snapshot")
	}

	code, body = get(t, srv, "/timings")
	if code != http.StatusOK || !strings.Contains(body, "kcca.train.eigen") {
		t.Errorf("/timings status %d body %q", code, body)
	}

	code, body = get(t, srv, "/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"obs"`) {
		t.Errorf("/debug/vars status %d missing published obs var", code)
	}

	code, _ = get(t, srv, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

func TestServeMetrics(t *testing.T) {
	obs.Reset()
	addr, err := obs.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Error("ServeMetrics should enable instrumentation")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("snapshot decode: %v", err)
	}
	if !snap.Enabled {
		t.Error("served snapshot reports disabled")
	}
}
