package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: four log-spaced buckets per decade spanning
// 10^histLoExp .. 10^histHiExp, plus an underflow bucket (index 0, for
// values <= 10^histLoExp, including nonpositive and NaN values) and an
// overflow bucket (the last index). The edges are a fixed function of the
// bucket index — UpperEdge(i) = 10^(histLoExp + i/histPerDecade) — so test
// assertions about bucket placement and quantile estimates are stable
// across runs, platforms, and worker counts.
const (
	histLoExp      = -9
	histHiExp      = 9
	histPerDecade  = 4
	histNumBuckets = (histHiExp-histLoExp)*histPerDecade + 2
)

// Histogram is a fixed-log-bucket histogram of nonnegative observations
// (latencies in seconds, candidate counts, sizes). All updates are atomic;
// it is safe for concurrent use from pool workers.
type Histogram struct {
	buckets [histNumBuckets]atomic.Int64
	count   atomic.Int64
	sum     FloatTotal
}

// bucketIndex returns the smallest bucket whose upper edge is >= v.
func bucketIndex(v float64) int {
	if !(v > 0) {
		return 0 // nonpositive and NaN observations land in the underflow bucket
	}
	if math.IsInf(v, 1) {
		return histNumBuckets - 1
	}
	i := int(math.Ceil((math.Log10(v) - histLoExp) * histPerDecade))
	if i < 0 {
		return 0
	}
	if i >= histNumBuckets {
		return histNumBuckets - 1
	}
	return i
}

// UpperEdge returns the inclusive upper edge of bucket i. The overflow
// bucket reports math.MaxFloat64 (finite, so snapshots stay valid JSON).
func UpperEdge(i int) float64 {
	if i >= histNumBuckets-1 {
		return math.MaxFloat64
	}
	return math.Pow(10, histLoExp+float64(i)/histPerDecade)
}

// Observe records one value. Non-finite values count in the underflow or
// overflow bucket but are excluded from the sum, so snapshots stay finite
// (and valid JSON) no matter what was observed.
func (h *Histogram) Observe(v float64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		h.sum.Add(v)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Value() / float64(n)
}

// Quantile returns the upper edge of the bucket containing the q-quantile
// observation — a deterministic, conservative estimate. Empty histograms
// return 0.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histNumBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return UpperEdge(i)
		}
	}
	return UpperEdge(histNumBuckets - 1)
}

// Time starts a latency measurement and returns the stop function that
// observes the elapsed seconds. When instrumentation is disabled it returns
// a shared no-op without reading the clock:
//
//	defer latencyHist.Time()()
func (h *Histogram) Time() func() {
	if !enabled.Load() {
		return noop
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.reset()
}
