package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns the observability HTTP handler:
//
//	/metrics        JSON snapshot (the JSON() encoding of Take())
//	/timings        human-readable stage-timing table
//	/debug/vars     expvar (includes the "obs" variable publishing Take())
//	/debug/pprof/*  runtime profiling endpoints
func Handler() http.Handler {
	publishOnce.Do(publishExpvar)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(JSON())
	})
	mux.HandleFunc("/timings", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(TimingsTable()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// publishOnce guards expvar.Publish, which panics on duplicate names.
var publishOnce sync.Once

func publishExpvar() {
	expvar.Publish("obs", expvar.Func(func() any { return Take() }))
}

// ServeMetrics starts the observability endpoint on addr (e.g. ":6060" or
// "127.0.0.1:0") in a background goroutine and returns the bound address.
// It also enables timing instrumentation — serving metrics implies wanting
// them populated.
func ServeMetrics(addr string) (boundAddr string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	SetEnabled(true)
	srv := &http.Server{Handler: Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
