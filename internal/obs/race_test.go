// Race coverage for concurrent instrument updates. This file is in package
// obs_test so it can drive updates through the real shared worker pool
// (internal/parallel imports obs, so the inverse import must live outside
// the obs package proper).
package obs_test

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// TestConcurrentUpdatesFromPoolWorkers hammers every instrument kind from
// pool workers while snapshots are taken concurrently. Run under -race (the
// CI race job does) this proves the atomic instrument implementations and
// the lock-free snapshot path are data-race free.
func TestConcurrentUpdatesFromPoolWorkers(t *testing.T) {
	obs.Reset()
	prev := obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	c := obs.GetCounter("race.counter")
	g := obs.GetGauge("race.gauge")
	ft := obs.GetFloatTotal("race.total")
	h := obs.GetHistogram("race.hist")

	var wg sync.WaitGroup
	stopSnaps := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopSnaps:
				return
			default:
				_ = obs.Take()
				_ = obs.JSON()
				_ = obs.TimingsTable()
			}
		}
	}()

	const n, rounds = 512, 8
	for r := 0; r < rounds; r++ {
		parallel.For(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c.Inc()
				g.Set(int64(i))
				ft.Add(0.001)
				h.Observe(float64(i+1) * 1e-6)
				obs.Span("race.stage")()
			}
		})
	}
	close(stopSnaps)
	wg.Wait()

	const want = n * rounds
	if c.Value() != want {
		t.Errorf("counter = %d, want %d", c.Value(), want)
	}
	if h.Count() != want {
		t.Errorf("histogram count = %d, want %d", h.Count(), want)
	}
	if st := obs.GetStage("race.stage"); st.Count() != want {
		t.Errorf("stage count = %d, want %d", st.Count(), want)
	}
	if ft.Value() <= 0 {
		t.Errorf("float total = %v", ft.Value())
	}
}
