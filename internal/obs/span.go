package obs

import (
	"sync/atomic"
	"time"
)

// Stage aggregates the span timer for one named pipeline stage: how often
// it ran, the total and maximum wall time. Stage names are dotted paths
// ("kcca.train.eigen"); the dots define the timing tree that TimingsTable
// renders.
type Stage struct {
	count   atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

func (s *Stage) record(d time.Duration) {
	s.count.Add(1)
	s.totalNs.Add(int64(d))
	for {
		old := s.maxNs.Load()
		if int64(d) <= old || s.maxNs.CompareAndSwap(old, int64(d)) {
			return
		}
	}
}

// Count returns how many spans completed for this stage.
func (s *Stage) Count() int64 { return s.count.Load() }

// Total returns the accumulated wall time.
func (s *Stage) Total() time.Duration { return time.Duration(s.totalNs.Load()) }

// Max returns the longest single span.
func (s *Stage) Max() time.Duration { return time.Duration(s.maxNs.Load()) }

func (s *Stage) reset() {
	s.count.Store(0)
	s.totalNs.Store(0)
	s.maxNs.Store(0)
}

// Span starts a span timer for the named stage and returns the stop
// function. The idiomatic call sites are
//
//	defer obs.Span("kcca.train")()
//
// for whole functions and
//
//	stop := obs.Span("kcca.train.eigen")
//	... the stage ...
//	stop()
//
// for regions. When instrumentation is disabled, Span returns a shared
// no-op without touching the registry or the clock.
func Span(name string) func() {
	if !enabled.Load() {
		return noop
	}
	s := GetStage(name)
	start := time.Now()
	return func() { s.record(time.Since(start)) }
}
