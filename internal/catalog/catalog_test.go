package catalog

import "testing"

func TestTPCDSValidates(t *testing.T) {
	// MustNewSchema would panic on dangling FKs or duplicate names.
	s := TPCDS(1)
	if s.Name != "tpcds" {
		t.Errorf("schema name = %q", s.Name)
	}
	if len(s.Tables) != 24 {
		t.Errorf("table count = %d, want 24", len(s.Tables))
	}
	ss := s.Table("store_sales")
	if ss == nil {
		t.Fatal("store_sales missing")
	}
	if !ss.IsFact {
		t.Error("store_sales should be a fact table")
	}
	if ss.RowCount != 2880404 {
		t.Errorf("store_sales rows = %d, want 2880404", ss.RowCount)
	}
	if c := ss.Column("ss_quantity"); c == nil || c.Min != 1 || c.Max != 100 {
		t.Errorf("ss_quantity stats wrong: %+v", c)
	}
	if ss.Column("nope") != nil {
		t.Error("unknown column should be nil")
	}
	if w := ss.RowWidth(); w <= 0 {
		t.Errorf("row width = %d", w)
	}
}

func TestTPCDSScaleFactor(t *testing.T) {
	s1 := TPCDS(1)
	s10 := TPCDS(10)
	r1 := s1.Table("store_sales").RowCount
	r10 := s10.Table("store_sales").RowCount
	if r10 != 10*r1 {
		t.Errorf("fact tables must scale linearly: %d vs %d", r1, r10)
	}
	c1 := s1.Table("customer").RowCount
	c10 := s10.Table("customer").RowCount
	if c10 <= c1 || c10 >= 10*c1 {
		t.Errorf("customer dim should scale sublinearly: %d vs %d", c1, c10)
	}
	if TPCDS(1).Table("store").RowCount != TPCDS(100).Table("store").RowCount {
		t.Error("small dims should not scale")
	}
	// Nonpositive scale factor defaults to 1.
	if TPCDS(0).Table("store_sales").RowCount != r1 {
		t.Error("sf=0 should default to sf=1")
	}
}

func TestForeignKeyLookup(t *testing.T) {
	s := TPCDS(1)
	fk, ok := s.ForeignKeyFor("store_sales", "ss_item_sk")
	if !ok || fk.RefTable != "item" || fk.RefColumn != "i_item_sk" {
		t.Errorf("FK lookup wrong: %+v ok=%v", fk, ok)
	}
	if _, ok := s.ForeignKeyFor("store_sales", "ss_quantity"); ok {
		t.Error("non-FK column should not resolve")
	}
	if !s.JoinKeyed("store_sales", "ss_item_sk", "item", "i_item_sk") {
		t.Error("FK join not detected")
	}
	if !s.JoinKeyed("item", "i_item_sk", "store_sales", "ss_item_sk") {
		t.Error("FK join must be symmetric")
	}
	if s.JoinKeyed("store_sales", "ss_quantity", "item", "i_item_sk") {
		t.Error("non-key join misdetected")
	}
}

func TestCustomerSchemaValidates(t *testing.T) {
	s := CustomerSchema()
	if len(s.Tables) != 8 {
		t.Errorf("customer schema table count = %d, want 8", len(s.Tables))
	}
	if s.Table("call_records") == nil || !s.Table("call_records").IsFact {
		t.Error("call_records must exist and be a fact table")
	}
	// The two schemas must not share any table names (Experiment 4 requires
	// genuinely different schemas).
	ds := TPCDS(1)
	for name := range s.Tables {
		if ds.Table(name) != nil {
			t.Errorf("table %q appears in both schemas", name)
		}
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := CustomerSchema()
	names := s.TableNames()
	if len(names) != 8 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Errorf("names not sorted: %v", names)
		}
	}
	if s.TotalRows() <= 0 {
		t.Error("total rows must be positive")
	}
}

func TestNewSchemaRejectsBadFK(t *testing.T) {
	tbl := &Table{Name: "t", RowCount: 1, Columns: []Column{{Name: "a"}}}
	if _, err := NewSchema("x", []*Table{tbl}, []ForeignKey{{"t", "a", "missing", "b"}}); err == nil {
		t.Error("expected error for FK to unknown table")
	}
	if _, err := NewSchema("x", []*Table{tbl}, []ForeignKey{{"t", "zzz", "t", "a"}}); err == nil {
		t.Error("expected error for FK from unknown column")
	}
	dup := &Table{Name: "t", RowCount: 1, Columns: []Column{{Name: "a"}, {Name: "a"}}}
	if _, err := NewSchema("x", []*Table{dup}, nil); err == nil {
		t.Error("expected error for duplicate column")
	}
	if _, err := NewSchema("x", []*Table{tbl, {Name: "t"}}, nil); err == nil {
		t.Error("expected error for duplicate table")
	}
}

func TestColTypeString(t *testing.T) {
	for ct, want := range map[ColType]string{TypeInt: "int", TypeDecimal: "decimal", TypeDate: "date", TypeChar: "char"} {
		if ct.String() != want {
			t.Errorf("%d.String() = %q, want %q", ct, ct.String(), want)
		}
	}
	if ColType(99).String() == "" {
		t.Error("unknown type should still render")
	}
}
