// Package catalog defines the database schemas used by the reproduction:
// a TPC-DS-shaped decision support schema (the paper trains and tests on
// TPC-DS scale factor 1) and a separate "customer" schema with different
// tables (the paper's Experiment 4 tests on a customer database the model
// never saw during training).
//
// The catalog stores only metadata — table cardinalities and per-column
// statistics (distinct-value counts, value ranges, skew). That is all the
// optimizer needs for planning and all the execution simulator needs to
// derive actual runtime behaviour.
package catalog

import (
	"fmt"
	"sort"
)

// ColType enumerates the (coarse) column types relevant to planning.
type ColType int

const (
	TypeInt ColType = iota
	TypeDecimal
	TypeDate
	TypeChar
)

func (t ColType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeDecimal:
		return "decimal"
	case TypeDate:
		return "date"
	case TypeChar:
		return "char"
	default:
		return fmt.Sprintf("coltype(%d)", int(t))
	}
}

// Column describes one column's statistics.
type Column struct {
	Name string
	Type ColType
	// NDV is the number of distinct values.
	NDV int64
	// Min and Max bound the value domain (dates are encoded as day
	// numbers, chars as dictionary codes).
	Min, Max float64
	// Skew is the Zipf exponent of the value frequency distribution;
	// 0 means uniform.
	Skew float64
	// Width is the average stored width in bytes.
	Width int
}

// ForeignKey records that (Table, Column) references (RefTable, RefColumn).
type ForeignKey struct {
	Table, Column       string
	RefTable, RefColumn string
}

// Table describes one table.
type Table struct {
	Name     string
	RowCount int64
	IsFact   bool
	Columns  []Column

	byName map[string]int
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return &t.Columns[i]
	}
	return nil
}

// RowWidth returns the total average row width in bytes.
func (t *Table) RowWidth() int {
	w := 0
	for _, c := range t.Columns {
		w += c.Width
	}
	if w == 0 {
		w = 64
	}
	return w
}

// Schema is a named collection of tables with foreign-key metadata.
type Schema struct {
	Name   string
	Tables map[string]*Table
	FKs    []ForeignKey

	fkIndex map[string]ForeignKey // "table.column" -> FK
}

// NewSchema builds a schema from tables and foreign keys, validating that
// every referenced table and column exists.
func NewSchema(name string, tables []*Table, fks []ForeignKey) (*Schema, error) {
	s := &Schema{Name: name, Tables: make(map[string]*Table, len(tables)), FKs: fks, fkIndex: map[string]ForeignKey{}}
	for _, t := range tables {
		if _, dup := s.Tables[t.Name]; dup {
			return nil, fmt.Errorf("catalog: duplicate table %q", t.Name)
		}
		t.byName = make(map[string]int, len(t.Columns))
		for i, c := range t.Columns {
			if _, dup := t.byName[c.Name]; dup {
				return nil, fmt.Errorf("catalog: duplicate column %s.%s", t.Name, c.Name)
			}
			t.byName[c.Name] = i
		}
		s.Tables[t.Name] = t
	}
	for _, fk := range fks {
		ft, ok := s.Tables[fk.Table]
		if !ok {
			return nil, fmt.Errorf("catalog: FK from unknown table %q", fk.Table)
		}
		if ft.Column(fk.Column) == nil {
			return nil, fmt.Errorf("catalog: FK from unknown column %s.%s", fk.Table, fk.Column)
		}
		rt, ok := s.Tables[fk.RefTable]
		if !ok {
			return nil, fmt.Errorf("catalog: FK to unknown table %q", fk.RefTable)
		}
		if rt.Column(fk.RefColumn) == nil {
			return nil, fmt.Errorf("catalog: FK to unknown column %s.%s", fk.RefTable, fk.RefColumn)
		}
		s.fkIndex[fk.Table+"."+fk.Column] = fk
	}
	return s, nil
}

// MustNewSchema is NewSchema that panics on error; intended for the static
// built-in schemas, which are validated by tests.
func MustNewSchema(name string, tables []*Table, fks []ForeignKey) *Schema {
	s, err := NewSchema(name, tables, fks)
	if err != nil {
		panic(err)
	}
	return s
}

// Table returns the named table, or nil.
func (s *Schema) Table(name string) *Table {
	return s.Tables[name]
}

// ForeignKeyFor returns the FK departing from table.column, if any.
func (s *Schema) ForeignKeyFor(table, column string) (ForeignKey, bool) {
	fk, ok := s.fkIndex[table+"."+column]
	return fk, ok
}

// JoinKeyed reports whether the equijoin between a.ca and b.cb follows a
// declared foreign key (in either direction).
func (s *Schema) JoinKeyed(a, ca, b, cb string) bool {
	if fk, ok := s.ForeignKeyFor(a, ca); ok && fk.RefTable == b && fk.RefColumn == cb {
		return true
	}
	if fk, ok := s.ForeignKeyFor(b, cb); ok && fk.RefTable == a && fk.RefColumn == ca {
		return true
	}
	return false
}

// TableNames returns the schema's table names sorted alphabetically.
func (s *Schema) TableNames() []string {
	names := make([]string, 0, len(s.Tables))
	for n := range s.Tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TotalRows returns the total row count across all tables.
func (s *Schema) TotalRows() int64 {
	var n int64
	for _, t := range s.Tables {
		n += t.RowCount
	}
	return n
}
