package catalog

import "math"

// TPC-DS date surrogate keys span roughly five years of days, matching the
// standard dataset (Julian day numbers 2450815..2452642 plus padding).
const (
	dsDateMin = 2450815
	dsDateMax = 2452642
)

// TPCDS returns a TPC-DS-shaped schema at the given scale factor. Fact
// table cardinalities scale linearly; the large customer-related dimensions
// scale with the square root of the factor (mirroring how TPC-DS dimension
// sizes grow sublinearly with scale); small dimensions are fixed.
func TPCDS(sf float64) *Schema {
	if sf <= 0 {
		sf = 1
	}
	fact := func(base int64) int64 { return int64(float64(base) * sf) }
	dim := func(base int64) int64 {
		n := int64(float64(base) * math.Sqrt(sf))
		if n < 1 {
			n = 1
		}
		return n
	}

	nCustomer := dim(100000)
	nAddress := dim(50000)
	nCdemo := int64(1920800) // fixed cross-product size in TPC-DS
	nHdemo := int64(7200)
	nItem := dim(18000)
	nDate := int64(73049)
	nTime := int64(86400)

	surrogate := func(name string, ndv int64) Column {
		return Column{Name: name, Type: TypeInt, NDV: ndv, Min: 1, Max: float64(ndv), Width: 8}
	}
	fkCol := func(name string, ndv int64, skew float64) Column {
		return Column{Name: name, Type: TypeInt, NDV: ndv, Min: 1, Max: float64(ndv), Skew: skew, Width: 8}
	}
	dateFK := func(name string) Column {
		return Column{Name: name, Type: TypeDate, NDV: 1823, Min: dsDateMin, Max: dsDateMax, Width: 8}
	}
	money := func(name string, max float64) Column {
		return Column{Name: name, Type: TypeDecimal, NDV: int64(max * 100), Min: 0, Max: max, Skew: 0.6, Width: 8}
	}
	cat := func(name string, ndv int64, skew float64) Column {
		return Column{Name: name, Type: TypeChar, NDV: ndv, Min: 0, Max: float64(ndv - 1), Skew: skew, Width: 16}
	}
	num := func(name string, min, max float64) Column {
		return Column{Name: name, Type: TypeInt, NDV: int64(max-min) + 1, Min: min, Max: max, Width: 4}
	}

	tables := []*Table{
		{
			Name: "store_sales", RowCount: fact(2880404), IsFact: true,
			Columns: []Column{
				dateFK("ss_sold_date_sk"),
				fkCol("ss_sold_time_sk", nTime, 0.3),
				fkCol("ss_item_sk", nItem, 0.5),
				fkCol("ss_customer_sk", nCustomer, 0.3),
				fkCol("ss_cdemo_sk", nCdemo, 0),
				fkCol("ss_hdemo_sk", nHdemo, 0),
				fkCol("ss_addr_sk", nAddress, 0.2),
				fkCol("ss_store_sk", 12, 0.4),
				fkCol("ss_promo_sk", 300, 0.7),
				surrogate("ss_ticket_number", fact(240000)),
				num("ss_quantity", 1, 100),
				money("ss_sales_price", 200),
				money("ss_ext_sales_price", 20000),
				money("ss_wholesale_cost", 100),
				money("ss_list_price", 300),
				money("ss_net_profit", 10000),
			},
		},
		{
			Name: "catalog_sales", RowCount: fact(1441548), IsFact: true,
			Columns: []Column{
				dateFK("cs_sold_date_sk"),
				dateFK("cs_ship_date_sk"),
				fkCol("cs_item_sk", nItem, 0.5),
				fkCol("cs_bill_customer_sk", nCustomer, 0.3),
				fkCol("cs_bill_cdemo_sk", nCdemo, 0),
				fkCol("cs_bill_hdemo_sk", nHdemo, 0),
				fkCol("cs_ship_mode_sk", 20, 0.3),
				fkCol("cs_warehouse_sk", 5, 0.4),
				fkCol("cs_call_center_sk", 6, 0.4),
				fkCol("cs_catalog_page_sk", 11718, 0.3),
				fkCol("cs_promo_sk", 300, 0.7),
				num("cs_quantity", 1, 100),
				money("cs_sales_price", 300),
				money("cs_ext_sales_price", 30000),
				money("cs_wholesale_cost", 100),
				money("cs_net_profit", 15000),
			},
		},
		{
			Name: "web_sales", RowCount: fact(719384), IsFact: true,
			Columns: []Column{
				dateFK("ws_sold_date_sk"),
				dateFK("ws_ship_date_sk"),
				fkCol("ws_item_sk", nItem, 0.5),
				fkCol("ws_bill_customer_sk", nCustomer, 0.3),
				fkCol("ws_web_site_sk", 30, 0.4),
				fkCol("ws_web_page_sk", 60, 0.4),
				fkCol("ws_ship_mode_sk", 20, 0.3),
				fkCol("ws_warehouse_sk", 5, 0.4),
				fkCol("ws_promo_sk", 300, 0.7),
				num("ws_quantity", 1, 100),
				money("ws_sales_price", 300),
				money("ws_ext_sales_price", 30000),
				money("ws_net_profit", 15000),
			},
		},
		{
			Name: "store_returns", RowCount: fact(287514), IsFact: true,
			Columns: []Column{
				dateFK("sr_returned_date_sk"),
				fkCol("sr_item_sk", nItem, 0.5),
				fkCol("sr_customer_sk", nCustomer, 0.3),
				fkCol("sr_store_sk", 12, 0.4),
				fkCol("sr_reason_sk", 35, 0.5),
				surrogate("sr_ticket_number", fact(230000)),
				num("sr_return_quantity", 1, 100),
				money("sr_return_amt", 20000),
			},
		},
		{
			Name: "catalog_returns", RowCount: fact(144067), IsFact: true,
			Columns: []Column{
				dateFK("cr_returned_date_sk"),
				fkCol("cr_item_sk", nItem, 0.5),
				fkCol("cr_refunded_customer_sk", nCustomer, 0.3),
				fkCol("cr_call_center_sk", 6, 0.4),
				fkCol("cr_reason_sk", 35, 0.5),
				num("cr_return_quantity", 1, 100),
				money("cr_return_amount", 30000),
			},
		},
		{
			Name: "web_returns", RowCount: fact(71763), IsFact: true,
			Columns: []Column{
				dateFK("wr_returned_date_sk"),
				fkCol("wr_item_sk", nItem, 0.5),
				fkCol("wr_refunded_customer_sk", nCustomer, 0.3),
				fkCol("wr_web_page_sk", 60, 0.4),
				fkCol("wr_reason_sk", 35, 0.5),
				num("wr_return_quantity", 1, 100),
				money("wr_return_amt", 30000),
			},
		},
		{
			Name: "inventory", RowCount: fact(11745000), IsFact: true,
			Columns: []Column{
				dateFK("inv_date_sk"),
				fkCol("inv_item_sk", nItem, 0),
				fkCol("inv_warehouse_sk", 5, 0),
				num("inv_quantity_on_hand", 0, 1000),
			},
		},
		{
			Name: "date_dim", RowCount: nDate,
			Columns: []Column{
				Column{Name: "d_date_sk", Type: TypeDate, NDV: nDate, Min: 2415022, Max: 2488070, Width: 8},
				num("d_year", 1900, 2100),
				num("d_moy", 1, 12),
				num("d_dom", 1, 31),
				num("d_qoy", 1, 4),
				cat("d_day_name", 7, 0),
				num("d_month_seq", 0, 2400),
			},
		},
		{
			Name: "time_dim", RowCount: nTime,
			Columns: []Column{
				surrogate("t_time_sk", nTime),
				num("t_hour", 0, 23),
				num("t_minute", 0, 59),
			},
		},
		{
			Name: "item", RowCount: nItem,
			Columns: []Column{
				surrogate("i_item_sk", nItem),
				cat("i_category", 10, 0.2),
				num("i_category_id", 1, 10),
				cat("i_class", 100, 0.3),
				cat("i_brand", 700, 0.4),
				num("i_manufact_id", 1, 1000),
				money("i_current_price", 100),
				cat("i_size", 7, 0.2),
				cat("i_color", 92, 0.4),
			},
		},
		{
			Name: "customer", RowCount: nCustomer,
			Columns: []Column{
				surrogate("c_customer_sk", nCustomer),
				fkCol("c_current_addr_sk", nAddress, 0),
				fkCol("c_current_cdemo_sk", nCdemo, 0),
				fkCol("c_current_hdemo_sk", nHdemo, 0),
				num("c_birth_year", 1924, 1992),
				cat("c_preferred_cust_flag", 2, 0),
			},
		},
		{
			Name: "customer_address", RowCount: nAddress,
			Columns: []Column{
				surrogate("ca_address_sk", nAddress),
				cat("ca_state", 51, 0.5),
				cat("ca_city", 600, 0.4),
				cat("ca_county", 1850, 0.4),
				num("ca_gmt_offset", -10, -5),
				cat("ca_zip", 7000, 0.3),
			},
		},
		{
			Name: "customer_demographics", RowCount: nCdemo,
			Columns: []Column{
				surrogate("cd_demo_sk", nCdemo),
				cat("cd_gender", 2, 0),
				cat("cd_marital_status", 5, 0),
				cat("cd_education_status", 7, 0),
				num("cd_purchase_estimate", 500, 10000),
				cat("cd_credit_rating", 4, 0),
				num("cd_dep_count", 0, 9),
			},
		},
		{
			Name: "household_demographics", RowCount: nHdemo,
			Columns: []Column{
				surrogate("hd_demo_sk", nHdemo),
				fkCol("hd_income_band_sk", 20, 0),
				cat("hd_buy_potential", 6, 0),
				num("hd_dep_count", 0, 9),
				num("hd_vehicle_count", -1, 4),
			},
		},
		{
			Name: "income_band", RowCount: 20,
			Columns: []Column{
				surrogate("ib_income_band_sk", 20),
				num("ib_lower_bound", 0, 190000),
				num("ib_upper_bound", 10000, 200000),
			},
		},
		{
			Name: "store", RowCount: 12,
			Columns: []Column{
				surrogate("s_store_sk", 12),
				cat("s_state", 9, 0),
				cat("s_county", 9, 0),
				num("s_number_employees", 200, 300),
				num("s_floor_space", 5000000, 10000000),
			},
		},
		{
			Name: "warehouse", RowCount: 5,
			Columns: []Column{
				surrogate("w_warehouse_sk", 5),
				cat("w_state", 5, 0),
				num("w_warehouse_sq_ft", 50000, 1000000),
			},
		},
		{
			Name: "promotion", RowCount: 300,
			Columns: []Column{
				surrogate("p_promo_sk", 300),
				cat("p_channel_email", 2, 0),
				cat("p_channel_tv", 2, 0),
				cat("p_channel_dmail", 2, 0),
			},
		},
		{
			Name: "ship_mode", RowCount: 20,
			Columns: []Column{
				surrogate("sm_ship_mode_sk", 20),
				cat("sm_type", 6, 0),
				cat("sm_carrier", 20, 0),
			},
		},
		{
			Name: "reason", RowCount: 35,
			Columns: []Column{
				surrogate("r_reason_sk", 35),
				cat("r_reason_desc", 35, 0),
			},
		},
		{
			Name: "call_center", RowCount: 6,
			Columns: []Column{
				surrogate("cc_call_center_sk", 6),
				cat("cc_state", 6, 0),
				num("cc_employees", 100, 700),
			},
		},
		{
			Name: "catalog_page", RowCount: 11718,
			Columns: []Column{
				surrogate("cp_catalog_page_sk", 11718),
				num("cp_catalog_number", 1, 109),
			},
		},
		{
			Name: "web_site", RowCount: 30,
			Columns: []Column{
				surrogate("web_site_sk", 30),
				cat("web_class", 5, 0),
			},
		},
		{
			Name: "web_page", RowCount: 60,
			Columns: []Column{
				surrogate("wp_web_page_sk", 60),
				cat("wp_type", 7, 0),
			},
		},
	}

	fks := []ForeignKey{
		{"store_sales", "ss_sold_date_sk", "date_dim", "d_date_sk"},
		{"store_sales", "ss_sold_time_sk", "time_dim", "t_time_sk"},
		{"store_sales", "ss_item_sk", "item", "i_item_sk"},
		{"store_sales", "ss_customer_sk", "customer", "c_customer_sk"},
		{"store_sales", "ss_cdemo_sk", "customer_demographics", "cd_demo_sk"},
		{"store_sales", "ss_hdemo_sk", "household_demographics", "hd_demo_sk"},
		{"store_sales", "ss_addr_sk", "customer_address", "ca_address_sk"},
		{"store_sales", "ss_store_sk", "store", "s_store_sk"},
		{"store_sales", "ss_promo_sk", "promotion", "p_promo_sk"},
		{"catalog_sales", "cs_sold_date_sk", "date_dim", "d_date_sk"},
		{"catalog_sales", "cs_ship_date_sk", "date_dim", "d_date_sk"},
		{"catalog_sales", "cs_item_sk", "item", "i_item_sk"},
		{"catalog_sales", "cs_bill_customer_sk", "customer", "c_customer_sk"},
		{"catalog_sales", "cs_bill_cdemo_sk", "customer_demographics", "cd_demo_sk"},
		{"catalog_sales", "cs_bill_hdemo_sk", "household_demographics", "hd_demo_sk"},
		{"catalog_sales", "cs_ship_mode_sk", "ship_mode", "sm_ship_mode_sk"},
		{"catalog_sales", "cs_warehouse_sk", "warehouse", "w_warehouse_sk"},
		{"catalog_sales", "cs_call_center_sk", "call_center", "cc_call_center_sk"},
		{"catalog_sales", "cs_catalog_page_sk", "catalog_page", "cp_catalog_page_sk"},
		{"catalog_sales", "cs_promo_sk", "promotion", "p_promo_sk"},
		{"web_sales", "ws_sold_date_sk", "date_dim", "d_date_sk"},
		{"web_sales", "ws_ship_date_sk", "date_dim", "d_date_sk"},
		{"web_sales", "ws_item_sk", "item", "i_item_sk"},
		{"web_sales", "ws_bill_customer_sk", "customer", "c_customer_sk"},
		{"web_sales", "ws_web_site_sk", "web_site", "web_site_sk"},
		{"web_sales", "ws_web_page_sk", "web_page", "wp_web_page_sk"},
		{"web_sales", "ws_ship_mode_sk", "ship_mode", "sm_ship_mode_sk"},
		{"web_sales", "ws_warehouse_sk", "warehouse", "w_warehouse_sk"},
		{"web_sales", "ws_promo_sk", "promotion", "p_promo_sk"},
		{"store_returns", "sr_returned_date_sk", "date_dim", "d_date_sk"},
		{"store_returns", "sr_item_sk", "item", "i_item_sk"},
		{"store_returns", "sr_customer_sk", "customer", "c_customer_sk"},
		{"store_returns", "sr_store_sk", "store", "s_store_sk"},
		{"store_returns", "sr_reason_sk", "reason", "r_reason_sk"},
		{"catalog_returns", "cr_returned_date_sk", "date_dim", "d_date_sk"},
		{"catalog_returns", "cr_item_sk", "item", "i_item_sk"},
		{"catalog_returns", "cr_refunded_customer_sk", "customer", "c_customer_sk"},
		{"catalog_returns", "cr_call_center_sk", "call_center", "cc_call_center_sk"},
		{"catalog_returns", "cr_reason_sk", "reason", "r_reason_sk"},
		{"web_returns", "wr_returned_date_sk", "date_dim", "d_date_sk"},
		{"web_returns", "wr_item_sk", "item", "i_item_sk"},
		{"web_returns", "wr_refunded_customer_sk", "customer", "c_customer_sk"},
		{"web_returns", "wr_web_page_sk", "web_page", "wp_web_page_sk"},
		{"web_returns", "wr_reason_sk", "reason", "r_reason_sk"},
		{"inventory", "inv_date_sk", "date_dim", "d_date_sk"},
		{"inventory", "inv_item_sk", "item", "i_item_sk"},
		{"inventory", "inv_warehouse_sk", "warehouse", "w_warehouse_sk"},
		{"customer", "c_current_addr_sk", "customer_address", "ca_address_sk"},
		{"customer", "c_current_cdemo_sk", "customer_demographics", "cd_demo_sk"},
		{"customer", "c_current_hdemo_sk", "household_demographics", "hd_demo_sk"},
		{"household_demographics", "hd_income_band_sk", "income_band", "ib_income_band_sk"},
	}

	return MustNewSchema("tpcds", tables, fks)
}
