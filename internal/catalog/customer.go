package catalog

// CustomerSchema returns the schema of the separate production database
// used for the paper's Experiment 4: a telecom billing warehouse whose
// tables, columns, and data distributions differ entirely from TPC-DS. The
// model trained on TPC-DS queries is tested on queries against this schema
// without retraining, exactly as in Sec. VII-A.4.
func CustomerSchema() *Schema {
	surrogate := func(name string, ndv int64) Column {
		return Column{Name: name, Type: TypeInt, NDV: ndv, Min: 1, Max: float64(ndv), Width: 8}
	}
	fkCol := func(name string, ndv int64, skew float64) Column {
		return Column{Name: name, Type: TypeInt, NDV: ndv, Min: 1, Max: float64(ndv), Skew: skew, Width: 8}
	}
	cat := func(name string, ndv int64, skew float64) Column {
		return Column{Name: name, Type: TypeChar, NDV: ndv, Min: 0, Max: float64(ndv - 1), Skew: skew, Width: 16}
	}
	num := func(name string, min, max float64) Column {
		return Column{Name: name, Type: TypeInt, NDV: int64(max-min) + 1, Min: min, Max: max, Width: 4}
	}
	money := func(name string, max float64) Column {
		return Column{Name: name, Type: TypeDecimal, NDV: int64(max * 100), Min: 0, Max: max, Skew: 0.5, Width: 8}
	}
	day := func(name string, days int64) Column {
		return Column{Name: name, Type: TypeDate, NDV: days, Min: 0, Max: float64(days - 1), Width: 8}
	}

	tables := []*Table{
		{
			Name: "call_records", RowCount: 6000000, IsFact: true,
			Columns: []Column{
				surrogate("call_id", 6000000),
				fkCol("cr_sub_id", 1100000, 0.6),
				day("cr_call_date", 365),
				num("cr_duration_sec", 1, 7200),
				num("cr_bytes_used", 0, 500000000),
				cat("cr_cell_id", 2500, 0.7),
				cat("cr_call_type", 4, 0.3),
			},
		},
		{
			Name: "invoices", RowCount: 1800000, IsFact: true,
			Columns: []Column{
				surrogate("inv_id", 1800000),
				fkCol("inv_acct_id", 450000, 0.2),
				day("inv_bill_date", 24),
				money("inv_amount_due", 2000),
				money("inv_amount_paid", 2000),
				cat("inv_status", 3, 0.4),
			},
		},
		{
			Name: "payments", RowCount: 1600000, IsFact: true,
			Columns: []Column{
				surrogate("pay_id", 1600000),
				fkCol("pay_inv_id", 1800000, 0),
				day("pay_date", 730),
				money("pay_amount", 2000),
				cat("pay_method", 5, 0.5),
			},
		},
		{
			Name: "subscriptions", RowCount: 1100000,
			Columns: []Column{
				surrogate("sub_id", 1100000),
				fkCol("sub_acct_id", 450000, 0.1),
				fkCol("sub_plan_id", 180, 0.8),
				fkCol("sub_device_id", 350000, 0.2),
				day("sub_activation_date", 3650),
				cat("sub_status", 5, 0.4),
				money("sub_monthly_fee", 200),
			},
		},
		{
			Name: "accounts", RowCount: 450000,
			Columns: []Column{
				surrogate("acct_id", 450000),
				fkCol("acct_region_id", 45, 0.5),
				cat("acct_segment", 8, 0.3),
				cat("acct_status", 4, 0.5),
				money("acct_credit_limit", 10000),
				day("acct_open_date", 7300),
			},
		},
		{
			Name: "devices", RowCount: 350000,
			Columns: []Column{
				surrogate("device_id", 350000),
				cat("dev_model", 1200, 0.8),
				cat("dev_vendor", 25, 0.7),
				cat("dev_os", 4, 0.4),
			},
		},
		{
			Name: "plans", RowCount: 180,
			Columns: []Column{
				surrogate("plan_id", 180),
				cat("plan_type", 6, 0.3),
				money("plan_monthly_price", 200),
				num("plan_data_cap_gb", 1, 1000),
			},
		},
		{
			Name: "regions", RowCount: 45,
			Columns: []Column{
				surrogate("region_id", 45),
				cat("region_name", 45, 0),
				cat("region_country", 5, 0.3),
			},
		},
	}

	fks := []ForeignKey{
		{"call_records", "cr_sub_id", "subscriptions", "sub_id"},
		{"invoices", "inv_acct_id", "accounts", "acct_id"},
		{"payments", "pay_inv_id", "invoices", "inv_id"},
		{"subscriptions", "sub_acct_id", "accounts", "acct_id"},
		{"subscriptions", "sub_plan_id", "plans", "plan_id"},
		{"subscriptions", "sub_device_id", "devices", "device_id"},
		{"accounts", "acct_region_id", "regions", "region_id"},
	}

	return MustNewSchema("customer", tables, fks)
}
