package features

import (
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
)

func planFor(t *testing.T, sql string) *optimizer.Plan {
	t.Helper()
	q, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.BuildPlan(q, catalog.TPCDS(1), 3, optimizer.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanVectorShape(t *testing.T) {
	p := planFor(t, "SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 10")
	v := PlanVector(p)
	if len(v) != PlanVectorLen {
		t.Fatalf("len = %d, want %d", len(v), PlanVectorLen)
	}
	names := PlanFeatureNames()
	if len(names) != PlanVectorLen {
		t.Fatalf("names len = %d", len(names))
	}
	// Exactly one file_scan with positive log-cardinality.
	scanIdx := 2 * int(optimizer.OpFileScan)
	if v[scanIdx] != 1 {
		t.Errorf("file_scan count = %v, want 1", v[scanIdx])
	}
	if v[scanIdx+1] <= 0 {
		t.Errorf("file_scan logcardsum = %v, want positive", v[scanIdx+1])
	}
	// Counts are nonnegative everywhere.
	for i, x := range v {
		if x < 0 {
			t.Errorf("feature %s = %v", names[i], x)
		}
	}
}

func TestPlanVectorRawVsLog(t *testing.T) {
	p := planFor(t, "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk")
	raw := PlanVectorRaw(p)
	logv := PlanVector(p)
	if len(raw) != len(logv) {
		t.Fatal("length mismatch")
	}
	for i := 0; i < len(raw); i += 2 {
		if raw[i] != logv[i] {
			t.Errorf("counts must match at %d: %v vs %v", i, raw[i], logv[i])
		}
		if want := math.Log1p(raw[i+1]); math.Abs(logv[i+1]-want) > 1e-12 {
			t.Errorf("cardsum %d: log1p(%v) = %v, got %v", i, raw[i+1], want, logv[i+1])
		}
	}
}

func TestPlanVectorDistinguishesQueries(t *testing.T) {
	a := PlanVector(planFor(t, "SELECT COUNT(*) FROM store"))
	b := PlanVector(planFor(t, "SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk"))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Error("different plans should have different vectors")
	}
}

func TestSQLVector(t *testing.T) {
	v, err := SQLVector("SELECT COUNT(*) FROM t1 AS a, t2 AS b WHERE a.k = b.k AND a.x > 3 ORDER BY a.x")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 9 {
		t.Fatalf("len = %d, want 9", len(v))
	}
	// join preds = 1, equijoins = 1, selections = 1, sort cols = 1, aggs = 1.
	if v[4] != 1 || v[5] != 1 || v[1] != 1 || v[7] != 1 || v[8] != 1 {
		t.Errorf("vector = %v", v)
	}
	if _, err := SQLVector("garbage"); err == nil {
		t.Error("bad SQL accepted")
	}
}

func TestPerfVectors(t *testing.T) {
	m := exec.Metrics{ElapsedSec: math.E - 1, RecordsAccessed: 10, RecordsUsed: 5, DiskIOs: 0, MessageCount: 3, MessageBytes: 100}
	raw := PerfRawVector(m)
	kern := PerfKernelVector(m)
	if len(raw) != exec.NumMetrics || len(kern) != exec.NumMetrics {
		t.Fatal("wrong lengths")
	}
	if raw[0] != math.E-1 {
		t.Errorf("raw elapsed = %v", raw[0])
	}
	if math.Abs(kern[0]-1) > 1e-12 {
		t.Errorf("kernel elapsed = %v, want 1 (log1p(e-1))", kern[0])
	}
	if kern[3] != 0 {
		t.Errorf("log1p(0) = %v, want 0", kern[3])
	}
}

func TestMatrices(t *testing.T) {
	m := Matrices([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Errorf("matrix wrong: %v", m)
	}
	if e := Matrices(nil); e.Rows != 0 {
		t.Error("empty input should give empty matrix")
	}
}
