// Package features builds the feature vectors of Sec. VI-D of the paper:
//
//   - the query plan feature vector (Fig. 9): an instance count and a
//     cardinality sum for each physical operator type, computed from the
//     optimizer's ESTIMATED cardinalities (only information available
//     before execution);
//
//   - the SQL text feature vector (Sec. VI-D.1): nine statistics computed
//     by parsing the statement text;
//
//   - the performance feature vector: the six measured metrics.
//
// Cardinality sums and performance metrics are log1p-transformed inside
// the kernel-facing vectors: the Gaussian kernel compares squared
// Euclidean distances, and the paper's own observation that the model
// works off "the relative similarity of the cardinalities" — ratios, not
// absolute differences — is exactly a log-scale comparison. Raw metric
// vectors (for neighbor averaging, which the paper does on raw values)
// are kept separately.
package features

import (
	"fmt"
	"math"

	"repro/internal/exec"
	"repro/internal/linalg"
	"repro/internal/optimizer"
	"repro/internal/sqlparse"
)

// PlanVectorLen is the dimensionality of the plan feature vector: one
// (count, cardinality-sum) pair per operator type.
const PlanVectorLen = 2 * optimizer.NumOpTypes

// PlanVector computes the query plan feature vector from estimated
// cardinalities.
func PlanVector(p *optimizer.Plan) []float64 {
	out := make([]float64, PlanVectorLen)
	p.Root.Walk(func(n *optimizer.Node) {
		i := int(n.Op)
		out[2*i]++
		out[2*i+1] += n.EstRows
	})
	for i := 0; i < optimizer.NumOpTypes; i++ {
		out[2*i+1] = math.Log1p(out[2*i+1])
	}
	return out
}

// PlanVectorRaw computes the plan feature vector with RAW cardinality sums
// (no log transform) — the covariates exactly as the paper's regression
// baseline used them (Sec. V-A).
func PlanVectorRaw(p *optimizer.Plan) []float64 {
	out := make([]float64, PlanVectorLen)
	p.Root.Walk(func(n *optimizer.Node) {
		i := int(n.Op)
		out[2*i]++
		out[2*i+1] += n.EstRows
	})
	return out
}

// PlanFeatureNames returns the names of the plan vector elements.
func PlanFeatureNames() []string {
	names := make([]string, 0, PlanVectorLen)
	for _, op := range optimizer.AllOpTypes() {
		names = append(names, op.String()+"_count", op.String()+"_logcardsum")
	}
	return names
}

// SQLVector computes the nine SQL-text statistics by parsing the statement.
func SQLVector(sql string) ([]float64, error) {
	ts, err := sqlparse.TextStats(sql)
	if err != nil {
		return nil, fmt.Errorf("features: %w", err)
	}
	return ts.Vector(), nil
}

// PerfKernelVector returns the log1p-transformed performance vector used
// on the Y side of KCCA training.
func PerfKernelVector(m exec.Metrics) []float64 {
	v := m.Vector()
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Log1p(x)
	}
	return out
}

// PerfRawVector returns the untransformed metric vector used when
// averaging neighbor metrics into a prediction.
func PerfRawVector(m exec.Metrics) []float64 { return m.Vector() }

// Matrices assembles feature matrices from per-item vectors.
func Matrices(vectors [][]float64) *linalg.Matrix {
	if len(vectors) == 0 {
		return linalg.NewMatrix(0, 0)
	}
	return linalg.FromRows(vectors)
}
