// Package cli is the shared exit path of the repo's commands. Its one job
// is making cleanup reliable: hooks registered with AtExit (flushing the
// obs timings table, draining a server, removing a partial output file)
// run exactly once on every exit route — normal return, Fatalf, or a
// signal-triggered shutdown — where a bare os.Exit would silently skip
// deferred cleanup (the old qpredict fatal() wart: -timings printed
// nothing on error paths).
package cli

import (
	"fmt"
	"os"
	"sync"
)

var (
	mu    sync.Mutex
	hooks []func()
	ran   bool

	// exit is swapped out by tests; everything funnels through it.
	exit = os.Exit
)

// AtExit registers a cleanup hook. Hooks run in reverse registration order
// (like defers), exactly once, on Exit or Fatalf.
func AtExit(hook func()) {
	mu.Lock()
	defer mu.Unlock()
	hooks = append(hooks, hook)
}

// RunHooks runs the registered hooks now (reverse order, once). Exit calls
// it automatically; main functions that return normally instead of calling
// Exit should defer it.
func RunHooks() {
	mu.Lock()
	if ran {
		mu.Unlock()
		return
	}
	ran = true
	hs := hooks
	mu.Unlock()
	for i := len(hs) - 1; i >= 0; i-- {
		hs[i]()
	}
}

// Exit runs the hooks and terminates with the given status code.
func Exit(code int) {
	RunHooks()
	exit(code)
}

// Fatalf prints the message to stderr, runs the hooks, and exits 1.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	Exit(1)
}
