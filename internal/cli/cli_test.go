package cli

import (
	"os"
	"testing"
)

// reset clears package state between tests (the package is process-global
// by design; tests exercise it in isolation).
func reset() {
	mu.Lock()
	hooks = nil
	ran = false
	mu.Unlock()
}

func TestExitRunsHooksInReverseOnce(t *testing.T) {
	reset()
	var order []int
	AtExit(func() { order = append(order, 1) })
	AtExit(func() { order = append(order, 2) })
	code := -1
	exit = func(c int) { code = c }
	defer func() { exit = os.Exit }()

	Exit(7)
	if code != 7 {
		t.Fatalf("exit code %d, want 7", code)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("hooks ran in order %v, want [2 1]", order)
	}

	// A second RunHooks (for example Exit after a deferred RunHooks) is a
	// no-op: hooks never run twice.
	RunHooks()
	if len(order) != 2 {
		t.Fatalf("hooks re-ran: %v", order)
	}
}

func TestRunHooksThenExit(t *testing.T) {
	reset()
	runs := 0
	AtExit(func() { runs++ })
	RunHooks()
	exited := false
	exit = func(int) { exited = true }
	defer func() { exit = os.Exit }()
	Exit(0)
	if runs != 1 {
		t.Fatalf("hook ran %d times, want 1", runs)
	}
	if !exited {
		t.Fatal("Exit did not terminate")
	}
}
