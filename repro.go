// Package repro is a from-scratch Go reproduction of "Predicting Multiple
// Metrics for Queries: Better Decisions Enabled by Machine Learning"
// (Ganapathi, Kuno, Dayal, Wiener, Fox, Jordan, Patterson — ICDE 2009).
//
// The paper trains a Kernel Canonical Correlation Analysis (KCCA) model
// that correlates query plan feature vectors (available before execution)
// with measured performance vectors, then predicts all six performance
// metrics of an unseen query — elapsed time, records accessed, records
// used, disk I/Os, message count, message bytes — from the performance
// vectors of its nearest neighbors in the learned projection.
//
// This root package re-exports the library's primary public surface. The
// implementation lives under internal/:
//
//   - internal/core       — the predictor (train / predict / two-step / confidence)
//   - internal/kcca       — kernel CCA (with internal/cca, /pca, /kernels, /linalg)
//   - internal/knn        — nearest-neighbor prediction
//   - internal/regress    — the linear-regression baseline
//   - internal/cluster    — the K-means baseline
//   - internal/catalog    — TPC-DS-shaped and customer schemas
//   - internal/sqlgen     — query ASTs and SQL rendering
//   - internal/sqlparse   — SQL parsing (for the SQL-text feature vector)
//   - internal/optimizer  — cost-based optimizer with estimated + true cardinalities
//   - internal/exec       — parallel database execution simulator (the HP
//     Neoview stand-in; see DESIGN.md for the substitution rationale)
//   - internal/workload   — query templates and runtime categorization
//   - internal/dataset    — labeled dataset assembly
//   - internal/experiments — every table and figure of the paper's evaluation
//
// Quick start (see examples/quickstart for a runnable version):
//
//	pool, _ := dataset.Generate(dataset.GenConfig{
//	    Seed: 1, DataSeed: 2, Machine: exec.Research4(),
//	    Schema: catalog.TPCDS(1), Templates: workload.TPCDSTemplates(), Count: 500,
//	})
//	pred, _ := repro.Train(pool.Queries[:450], repro.DefaultOptions())
//	result, _ := pred.PredictQuery(pool.Queries[450])
//	fmt.Println(result.Metrics.ElapsedSec, result.Confidence)
package repro

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
)

// Predictor predicts the six performance metrics of a query before it
// executes. See internal/core for the full API.
type Predictor = core.Predictor

// Options configures predictor training.
type Options = core.Options

// Prediction is the result of predicting one query: metrics, predicted
// query type, confidence, and the neighbors used.
type Prediction = core.Prediction

// FeatureKind selects plan-based (the paper's choice) or SQL-text query
// features.
type FeatureKind = core.FeatureKind

// Feature kinds.
const (
	PlanFeatures = core.PlanFeatures
	SQLFeatures  = core.SQLFeatures
)

// Request describes one prediction to make (a planned query or a raw
// feature vector); Result is its outcome. They are the canonical predict
// surface — Predictor.Predict consumes Requests, and the serving layer
// (internal/serve, cmd/qpredictd) speaks the same pair.
type Request = core.Request

// Result pairs a Request's Prediction with its error.
type Result = core.Result

// Metrics is the six-metric performance vector.
type Metrics = exec.Metrics

// Machine is a simulated database system configuration.
type Machine = exec.Machine

// Query is one executed query with its plan, SQL, metrics, and category.
type Query = dataset.Query

// Category is the paper's runtime classification (feather, golf ball,
// bowling ball, wrecking ball).
type Category = workload.Category

// Query categories.
const (
	Feather      = workload.Feather
	GolfBall     = workload.GolfBall
	BowlingBall  = workload.BowlingBall
	WreckingBall = workload.WreckingBall
)

// Train fits a predictor on executed training queries.
func Train(train []*Query, opt Options) (*Predictor, error) {
	return core.Train(train, opt)
}

// DefaultOptions returns the paper's final configuration: plan features,
// Gaussian kernels with the 0.1/0.2 scale-fraction heuristic, k = 3
// Euclidean neighbors with equal weighting.
func DefaultOptions() Options { return core.DefaultOptions() }

// Research4 returns the paper's 4-processor research system configuration.
func Research4() Machine { return exec.Research4() }

// Production32 returns a configuration of the paper's 32-node production
// system using p of the 32 processors.
func Production32(p int) Machine { return exec.Production32(p) }
