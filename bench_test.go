// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations over the design choices called out in
// DESIGN.md. Each BenchmarkFig*/BenchmarkTable* target runs the
// corresponding experiment end-to-end on the paper-sized workload (pools
// are generated once and cached across benchmarks) and reports the
// headline accuracy numbers via b.ReportMetric, so a single
//
//	go test -bench=. -benchtime=1x
//
// run reproduces the entire evaluation. cmd/experiments prints the same
// results as formatted reports.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/kcca"
	"repro/internal/kernels"
	"repro/internal/knn"
	"repro/internal/linalg"
	"repro/internal/optimizer"
	"repro/internal/parallel"
	"repro/internal/sqlgen"
	"repro/internal/sqlparse"
	"repro/internal/statutil"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchLab  *experiments.Lab
)

// lab returns the shared paper-sized experiment lab, generating the query
// pools on first use (outside any benchmark timer).
func lab(b *testing.B) *experiments.Lab {
	b.Helper()
	benchOnce.Do(func() {
		benchLab = experiments.NewLab(42)
	})
	return benchLab
}

// warm runs fn once outside the timer so pool generation and model
// training caches do not pollute the first measured iteration.
func warm(b *testing.B, fn func() error) {
	b.Helper()
	if err := fn(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
}

func BenchmarkFig02QueryCensus(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.QueryCensus(); return err })
	var res *experiments.CensusResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.QueryCensus()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Total), "pool_queries")
}

func BenchmarkFig03RegressionElapsed(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.RegressionElapsed(); return err })
	var res *experiments.RegressionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.RegressionElapsed()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Negatives), "negative_preds")
	b.ReportMetric(float64(res.OffBy10x), "preds_10x_off")
}

func BenchmarkFig04RegressionRecords(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.RegressionRecords(); return err })
	var res *experiments.RegressionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.RegressionRecords()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Risk, "risk")
	b.ReportMetric(float64(res.OffBy10x), "preds_10x_off")
}

func BenchmarkSec5SimplerTechniques(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.Baselines(); return err })
	var res *experiments.BaselinesResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.Baselines()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.KMeansAgreement, "kmeans_agreement")
	b.ReportMetric(res.KCCAWithin20, "kcca_within20")
	b.ReportMetric(res.PCAWithin20, "pca_within20")
}

func BenchmarkFig08SQLTextFeatures(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.SQLTextKCCA(); return err })
	var res *experiments.SQLTextResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.SQLTextKCCA()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.SQLText.Risk[exec.MetricElapsed], "sqltext_risk")
	b.ReportMetric(res.PlanRef.Risk[exec.MetricElapsed], "plan_risk")
}

func BenchmarkTable1DistanceMetric(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.DistanceMetricComparison(); return err })
	var res *experiments.DesignTableResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.DistanceMetricComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Cells[0].Risk[exec.MetricElapsed], "euclidean_risk")
	b.ReportMetric(res.Cells[1].Risk[exec.MetricElapsed], "cosine_risk")
}

func BenchmarkTable2NeighborCount(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.NeighborCountComparison(); return err })
	var res *experiments.DesignTableResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.NeighborCountComparison()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Cells[0].Risk[exec.MetricElapsed], "k3_risk")
	b.ReportMetric(res.Cells[len(res.Cells)-1].Risk[exec.MetricElapsed], "k7_risk")
}

func BenchmarkTable3NeighborWeighting(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.NeighborWeighting(); return err })
	var res *experiments.DesignTableResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.NeighborWeighting()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Cells[0].Risk[exec.MetricElapsed], "equal_risk")
	b.ReportMetric(res.Cells[2].Risk[exec.MetricElapsed], "distance_risk")
}

func BenchmarkFig10Exp1Elapsed(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.Experiment1(); return err })
	var res *experiments.PredictionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.Experiment1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Risk[exec.MetricElapsed], "risk")
	b.ReportMetric(res.Trimmed[exec.MetricElapsed], "risk_trimmed")
	b.ReportMetric(res.Within20[exec.MetricElapsed], "within20")
}

func BenchmarkFig11Exp1RecordsUsed(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.Experiment1(); return err })
	var res *experiments.PredictionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.Experiment1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Risk[exec.MetricRecordsUsed], "risk")
}

func BenchmarkFig12Exp1MessageCount(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.Experiment1(); return err })
	var res *experiments.PredictionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.Experiment1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Risk[exec.MetricMessageCount], "risk")
}

func BenchmarkFig13Exp2Balanced(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.Experiment2(); return err })
	var res *experiments.PredictionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.Experiment2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Risk[exec.MetricElapsed], "risk")
	b.ReportMetric(res.Within20[exec.MetricElapsed], "within20")
}

func BenchmarkFig14Exp3TwoStep(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.Experiment3(); return err })
	var res *experiments.PredictionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.Experiment3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Risk[exec.MetricElapsed], "risk")
	b.ReportMetric(res.Within20[exec.MetricElapsed], "within20")
}

func BenchmarkFig15Exp4Customer(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.Experiment4(); return err })
	var res *experiments.Experiment4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.Experiment4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.OverpredictedOneModel), "onemodel_10x_over")
	b.ReportMetric(float64(res.OverpredictedTwoStep), "twostep_10x_over")
}

func BenchmarkFig16ConfigSweep(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.ConfigSweep(); return err })
	var res *experiments.ConfigSweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.ConfigSweep()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].Risk[exec.MetricElapsed], "risk_4cpu")
	b.ReportMetric(res.Rows[3].Risk[exec.MetricElapsed], "risk_32cpu")
	b.ReportMetric(res.Rows[0].TotalDiskIOs, "ios_4cpu")
}

func BenchmarkFig17OptimizerCost(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.OptimizerCostBaseline(); return err })
	var res *experiments.OptimizerCostResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.OptimizerCostBaseline()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CostAsPredictorRisk, "cost_risk")
	b.ReportMetric(res.KCCARisk, "kcca_risk")
}

// --- Ablations over DESIGN.md's called-out design choices ---------------

// ablationData builds one fixed train/test split for the ablation benches.
func ablationData(b *testing.B) (train, test []*dataset.Query) {
	b.Helper()
	l := lab(b)
	train, test, err := l.Exp1Split()
	if err != nil {
		b.Fatal(err)
	}
	return train, test
}

func ablationRisk(b *testing.B, opt core.Options, train, test []*dataset.Query) float64 {
	b.Helper()
	p, err := core.Train(train, opt)
	if err != nil {
		b.Fatal(err)
	}
	pred, act, err := experiments.Evaluate(p, test)
	if err != nil {
		b.Fatal(err)
	}
	risk := 0.0
	mean := 0.0
	for _, a := range act[exec.MetricElapsed] {
		mean += a
	}
	mean /= float64(len(act[exec.MetricElapsed]))
	var sse, sst float64
	for i, a := range act[exec.MetricElapsed] {
		d := pred[exec.MetricElapsed][i] - a
		sse += d * d
		sst += (a - mean) * (a - mean)
	}
	risk = 1 - sse/sst
	return risk
}

// BenchmarkAblationKPCARank sweeps the kernel-PCA reduction rank.
func BenchmarkAblationKPCARank(b *testing.B) {
	for _, rank := range []int{10, 20, 40, 80} {
		b.Run(benchName("rank", rank), func(b *testing.B) {
			train, test := ablationData(b)
			opt := core.DefaultOptions()
			opt.KCCA.Rank = rank
			var risk float64
			for i := 0; i < b.N; i++ {
				risk = ablationRisk(b, opt, train, test)
			}
			b.ReportMetric(risk, "risk")
		})
	}
}

// BenchmarkAblationKernelScale sweeps the kernel scale fraction around the
// paper's 0.1 query-side setting.
func BenchmarkAblationKernelScale(b *testing.B) {
	for _, milli := range []int{25, 100, 400, 1600} {
		b.Run(benchName("taufrac_milli", milli), func(b *testing.B) {
			train, test := ablationData(b)
			opt := core.DefaultOptions()
			opt.KCCA.TauFracX = float64(milli) / 1000
			var risk float64
			for i := 0; i < b.N; i++ {
				risk = ablationRisk(b, opt, train, test)
			}
			b.ReportMetric(risk, "risk")
		})
	}
}

// BenchmarkAblationRegularization sweeps the CCA ridge regularization.
func BenchmarkAblationRegularization(b *testing.B) {
	for _, exp := range []int{-5, -3, -1} {
		b.Run(benchName("reg_1e", exp), func(b *testing.B) {
			train, test := ablationData(b)
			opt := core.DefaultOptions()
			reg := 1.0
			for i := 0; i > exp; i-- {
				reg /= 10
			}
			opt.KCCA.Reg = reg
			var risk float64
			for i := 0; i < b.N; i++ {
				risk = ablationRisk(b, opt, train, test)
			}
			b.ReportMetric(risk, "risk")
		})
	}
}

// BenchmarkTrainingScaling measures training time versus training set size
// (the paper: cubic in the number of data points).
func BenchmarkTrainingScaling(b *testing.B) {
	for _, n := range []int{128, 256, 512, 1024} {
		b.Run(benchName("n", n), func(b *testing.B) {
			train, _ := ablationData(b)
			if n > len(train) {
				b.Skipf("only %d training queries", len(train))
			}
			sub := train[:n]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Train(sub, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPredictionLatency measures single-query prediction (the paper:
// "prediction of a single query can be done in under a second").
func BenchmarkPredictionLatency(b *testing.B) {
	l := lab(b)
	model, _, test, err := l.Exp1Model()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.PredictQuery(test[i%len(test)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks -----------------------------------------

func BenchmarkPlanningThroughput(b *testing.B) {
	schema := catalog.TPCDS(1)
	tpls := workload.TPCDSTemplates()
	r := statutil.NewRNG(1, "bench")
	cfg := optimizer.DefaultConfig(4)
	queries := make([]*sqlgen.Query, 0, 64)
	for i := 0; i < 64; i++ {
		tpl := tpls[i%len(tpls)]
		queries = append(queries, tpl.Gen(r))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := optimizer.BuildPlan(q, schema, 1, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutionSimulator(b *testing.B) {
	schema := catalog.TPCDS(1)
	q, err := sqlparse.Parse("SELECT i_category, SUM(ss_ext_sales_price), COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk BETWEEN 2451000 AND 2451100 GROUP BY i_category ORDER BY i_category")
	if err != nil {
		b.Fatal(err)
	}
	plan, err := optimizer.BuildPlan(q, schema, 1, optimizer.DefaultConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	m := exec.Research4()
	noise := statutil.NewRNG(1, "benchnoise")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exec.Execute(plan, m, noise)
	}
}

func BenchmarkSQLParse(b *testing.B) {
	sql := "SELECT i_category, SUM(ss_ext_sales_price), COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk BETWEEN 2451000 AND 2451100 AND i_category = 'v3' GROUP BY i_category ORDER BY i_category LIMIT 100"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sqlparse.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// serialParallel runs the body once pinned to one worker and once with the
// full pool, as /serial and /parallel sub-benchmarks. The equivalence tests
// prove the two paths produce identical results; these measure the spread.
func serialParallel(b *testing.B, body func(b *testing.B)) {
	b.Run("serial", func(b *testing.B) {
		defer parallel.SetMaxProcs(parallel.SetMaxProcs(1))
		body(b)
	})
	b.Run("parallel", func(b *testing.B) {
		defer parallel.SetMaxProcs(parallel.SetMaxProcs(0))
		body(b)
	})
}

func BenchmarkKernelMatrix(b *testing.B) {
	for _, n := range []int{200, 1000, 4000} {
		r := statutil.NewRNG(2, "kmat")
		x := linalg.NewMatrix(n, 24)
		for i := range x.Data {
			x.Data[i] = r.NormFloat64()
		}
		tau := kernels.ScaleHeuristic(x, 0.1)
		b.Run(benchName("n", n), func(b *testing.B) {
			serialParallel(b, func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					kernels.Matrix(x, tau)
				}
			})
		})
	}
}

func BenchmarkKNNSearch(b *testing.B) {
	for _, n := range []int{200, 1000, 4000} {
		r := statutil.NewRNG(5, "knnsearch")
		points := linalg.NewMatrix(n, 16)
		for i := range points.Data {
			points.Data[i] = r.NormFloat64()
		}
		queries := linalg.NewMatrix(256, 16)
		for i := range queries.Data {
			queries.Data[i] = r.NormFloat64()
		}
		b.Run(benchName("n", n), func(b *testing.B) {
			serialParallel(b, func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := knn.Search(points, queries, 3, knn.Euclidean); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	l := lab(b)
	model, _, test, err := l.Exp1Model()
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{200, 1000, 4000} {
		batch := make([]*dataset.Query, n)
		for i := range batch {
			batch[i] = test[i%len(test)]
		}
		b.Run(benchName("n", n), func(b *testing.B) {
			serialParallel(b, func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := model.PredictBatch(batch); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkSymEig256(b *testing.B) {
	r := statutil.NewRNG(3, "eig")
	x := linalg.NewMatrix(300, 256)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64()
	}
	spd := x.TMul(x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.SymEig(spd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKCCATrain256(b *testing.B) {
	r := statutil.NewRNG(4, "kcca")
	x := linalg.NewMatrix(256, 24)
	y := linalg.NewMatrix(256, 6)
	for i := range x.Data {
		x.Data[i] = r.NormFloat64() * 10
	}
	for i := range y.Data {
		y.Data[i] = r.NormFloat64() * 10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kcca.Train(x, y, kcca.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(prefix string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "=0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	s := prefix + "="
	if neg {
		s += "-"
	}
	return s + string(buf[i:])
}

func BenchmarkSec7c2FeatureInfluence(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.FeatureInfluences(); return err })
	var res *experiments.InfluenceResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.FeatureInfluences()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.JoinFeatureRank), "join_feature_rank")
}

func BenchmarkSec7c4WorkloadDrift(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.WorkloadDrift(); return err })
	var res *experiments.DriftResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.WorkloadDrift()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.StaticWithin20, "static_within20")
	b.ReportMetric(res.SlidingWithin20, "sliding_within20")
}

func BenchmarkContentionWhatIf(b *testing.B) {
	l := lab(b)
	warm(b, func() error { _, err := l.ContentionWhatIf(); return err })
	var res *experiments.ContentionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = l.ContentionWhatIf()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].RelativeError, "relerr_1slot")
	b.ReportMetric(res.Rows[3].RelativeError, "relerr_8slot")
}
