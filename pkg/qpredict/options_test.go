package qpredict

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDefaultValidates(t *testing.T) {
	opts := Default()
	if err := opts.Validate(); err != nil {
		t.Fatalf("defaults do not validate: %v", err)
	}
	if opts.Champion.Enabled() {
		t.Fatal("zoo enabled by default (no challengers configured)")
	}
	if got, want := opts.Champion.Policy(), model.DefaultPromotionPolicy(); got != want {
		t.Fatalf("default champion policy %+v != model default %+v", got, want)
	}
}

func TestLoadFilePartialOverridesDefaults(t *testing.T) {
	path := writeConfig(t, `{
		"serve": {"addr": ":9090", "window": "5ms"},
		"champion": {"challengers": ["optcost"]}
	}`)
	opts, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Serve.Addr != ":9090" || opts.Serve.Window.Std() != 5*time.Millisecond {
		t.Fatalf("serve overrides lost: %+v", opts.Serve)
	}
	// Untouched sections keep their defaults.
	if opts.Serve.MaxBatch != 64 || opts.Train.Count != 800 || opts.Sliding.Capacity != 500 {
		t.Fatalf("defaults perturbed: %+v", opts)
	}
	if !opts.Champion.Enabled() || opts.Champion.Kind != model.KindKCCA {
		t.Fatalf("champion config wrong: %+v", opts.Champion)
	}
}

func TestLoadFileRejectsUnknownFields(t *testing.T) {
	path := writeConfig(t, `{"serve": {"adress": ":9090"}}`)
	if _, err := LoadFile(path); err == nil || !strings.Contains(err.Error(), "adress") {
		t.Fatalf("typoed field accepted: %v", err)
	}
}

func TestLoadFileRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"zero max_batch":      `{"serve": {"max_batch": -1}}`,
		"tiny window":         `{"sliding": {"capacity": 3}}`,
		"bad partitioner":     `{"shards": {"partitioner": "roundrobin"}}`,
		"bad fsync":           `{"state": {"fsync": "sometimes"}}`,
		"unknown champion":    `{"champion": {"kind": "xgboost"}}`,
		"unknown challenger":  `{"champion": {"challengers": ["xgboost"]}}`,
		"margin out of range": `{"champion": {"margin": 1.5}}`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := LoadFile(writeConfig(t, body)); err == nil {
				t.Fatalf("invalid config accepted: %s", body)
			}
		})
	}
}

func TestDurationForms(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"250ms"`), &d); err != nil || d.Std() != 250*time.Millisecond {
		t.Fatalf("string form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`2000000`), &d); err != nil || d.Std() != 2*time.Millisecond {
		t.Fatalf("nanosecond form: %v %v", d, err)
	}
	if err := json.Unmarshal([]byte(`"fast"`), &d); err == nil {
		t.Fatal("garbage duration accepted")
	}
	if err := json.Unmarshal([]byte(`true`), &d); err == nil {
		t.Fatal("bool duration accepted")
	}
	b, err := json.Marshal(Duration(3 * time.Second))
	if err != nil || string(b) != `"3s"` {
		t.Fatalf("marshal: %s %v", b, err)
	}
}

// TestExampleConfigLoads keeps the shipped example config valid.
func TestExampleConfigLoads(t *testing.T) {
	opts, err := LoadFile(filepath.Join("..", "..", "examples", "config", "qpredictd.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Champion.Enabled() || len(opts.Champion.Challengers) != 2 {
		t.Fatalf("example config champion section drifted: %+v", opts.Champion)
	}
}

// TestRoundTrip: Default marshals to JSON that loads back to itself — the
// documented way to produce a starting config file.
func TestRoundTrip(t *testing.T) {
	opts := Default()
	b, err := json.MarshalIndent(opts, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(writeConfig(t, string(b)))
	if err != nil {
		t.Fatal(err)
	}
	lb, _ := json.Marshal(loaded)
	ob, _ := json.Marshal(opts)
	if string(lb) != string(ob) {
		t.Fatalf("round trip drifted:\n%s\n%s", ob, lb)
	}
}
