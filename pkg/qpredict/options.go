// Package qpredict is the configuration surface of the qpredict binaries:
// one Options struct covering the trainer, predictor, serving, sharding,
// durable-state, and champion/challenger knobs, with defaults matching the
// flags the binaries have always shipped. A JSON file loaded with LoadFile
// (qpredictd -config / qpredict -config) populates it; explicitly set
// flags override individual fields afterwards. The package holds no global
// state — every call works on the Options value it is given.
package qpredict

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/model"
	"repro/internal/wal"
)

// Duration is a time.Duration that marshals to and from JSON as a Go
// duration string ("2ms", "10s"). A bare JSON number is accepted as
// nanoseconds for compatibility with encoding/json's default encoding.
type Duration time.Duration

// Std returns the value as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON encodes the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON decodes either a duration string or a nanosecond count.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		dd, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("parsing duration %q: %w", x, err)
		}
		*d = Duration(dd)
	case float64:
		*d = Duration(time.Duration(x))
	default:
		return fmt.Errorf("duration must be a string like \"2ms\" or a nanosecond count, got %T", v)
	}
	return nil
}

// TrainOptions configures boot training (and the qpredict CLI's trainer).
type TrainOptions struct {
	// Count is the generated training workload size.
	Count int `json:"count"`
	// Seed is the workload seed; DataSeed the data realization seed.
	Seed     int64 `json:"seed"`
	DataSeed int64 `json:"dataseed"`
	// Machine names the modeled executor: "research4" or "prod32:<cpus>".
	Machine string `json:"machine"`
	// TwoStep enables query-type-specific (two-step) prediction.
	TwoStep bool `json:"twostep"`
	// Load, when set, loads a saved model instead of training.
	Load string `json:"load,omitempty"`
}

// ServeOptions configures the HTTP serving layer of qpredictd.
type ServeOptions struct {
	// Addr is the listen address (":0" for an ephemeral port).
	Addr string `json:"addr"`
	// Window is the micro-batch coalescing window (0 batches only what is
	// already queued).
	Window Duration `json:"window"`
	// MaxBatch caps a micro-batch; QueueCap bounds the pending queue.
	MaxBatch int `json:"max_batch"`
	QueueCap int `json:"queue"`
	// Timeout is the per-request prediction deadline.
	Timeout Duration `json:"timeout"`
	// DrainTimeout bounds graceful shutdown.
	DrainTimeout Duration `json:"drain_timeout"`
	// PlanCache sizes the fingerprint-keyed plan/feature cache shared by
	// the predict, observe, and WAL-replay paths (0 = the built-in
	// default, negative disables caching — every request re-plans).
	PlanCache int `json:"plan_cache,omitempty"`
}

// SlidingOptions configures the sliding retraining window.
type SlidingOptions struct {
	// Capacity is the window size; RetrainEvery the observations between
	// background retrains. Sharded daemons divide both across shards.
	Capacity     int `json:"capacity"`
	RetrainEvery int `json:"retrain_every"`
}

// ShardOptions configures the sharded multi-model tier.
type ShardOptions struct {
	// Count is the shard count (0 = single model). Champion/challenger
	// operation forces at least 1.
	Count int `json:"count"`
	// Partitioner is the routing policy: "hash" or "category".
	Partitioner string `json:"partitioner"`
}

// StateOptions configures durable serving state.
type StateOptions struct {
	// Dir is the state directory (empty = no durability).
	Dir string `json:"dir,omitempty"`
	// Fsync is the WAL sync policy: "always", "batch", or "none";
	// FsyncEvery the appends between syncs under "batch".
	Fsync      string `json:"fsync"`
	FsyncEvery int    `json:"fsync_every"`
	// SnapshotEvery is the applied observations between state snapshots.
	SnapshotEvery int `json:"snapshot_every"`
}

// ChampionOptions configures champion/challenger model selection: which
// kinds run, and the promotion policy that swaps the champion.
type ChampionOptions struct {
	// Kind is the initial champion model family ("kcca", "planstruct",
	// "optcost").
	Kind string `json:"kind"`
	// Challengers are the shadow-scored families; empty disables the zoo.
	Challengers []string `json:"challengers,omitempty"`
	// Window is the per-(kind, category) shadow-score ring size.
	Window int `json:"window"`
	// MinSamples is the per-category sample floor before a category is
	// comparable.
	MinSamples int `json:"min_samples"`
	// Margin is the relative-error improvement a challenger must show in
	// every comparable category (0.05 = 5% better).
	Margin float64 `json:"margin"`
	// Hysteresis is how many consecutive dominant promotion decisions a
	// challenger needs before it is promoted.
	Hysteresis int `json:"hysteresis"`
	// Cooldown is how many decisions are skipped after a promotion.
	Cooldown int `json:"cooldown"`
}

// Enabled reports whether champion/challenger operation is configured.
func (c ChampionOptions) Enabled() bool { return len(c.Challengers) > 0 }

// Policy returns the promotion policy these options describe.
func (c ChampionOptions) Policy() model.PromotionPolicy {
	return model.PromotionPolicy{
		Window:     c.Window,
		MinSamples: c.MinSamples,
		Margin:     c.Margin,
		Hysteresis: c.Hysteresis,
		Cooldown:   c.Cooldown,
	}
}

// Options is the full configuration of the qpredict binaries. Zero value
// is not useful; start from Default.
type Options struct {
	Train    TrainOptions    `json:"train"`
	Serve    ServeOptions    `json:"serve"`
	Sliding  SlidingOptions  `json:"sliding"`
	Shards   ShardOptions    `json:"shards"`
	State    StateOptions    `json:"state"`
	Champion ChampionOptions `json:"champion"`
}

// Default returns the options every binary starts from — identical to the
// historical flag defaults, with the champion policy mirroring
// model.DefaultPromotionPolicy.
func Default() Options {
	pp := model.DefaultPromotionPolicy()
	return Options{
		Train: TrainOptions{Count: 800, Seed: 1, DataSeed: 1000, Machine: "research4"},
		Serve: ServeOptions{
			Addr:         ":8080",
			Window:       Duration(2 * time.Millisecond),
			MaxBatch:     64,
			QueueCap:     1024,
			Timeout:      Duration(10 * time.Second),
			DrainTimeout: Duration(15 * time.Second),
		},
		Sliding: SlidingOptions{Capacity: 500, RetrainEvery: 100},
		Shards:  ShardOptions{Partitioner: "hash"},
		State: StateOptions{
			Fsync:         "batch",
			FsyncEvery:    wal.DefaultSyncEvery,
			SnapshotEvery: wal.DefaultSnapshotEvery,
		},
		Champion: ChampionOptions{
			Kind:       model.KindKCCA,
			Window:     pp.Window,
			MinSamples: pp.MinSamples,
			Margin:     pp.Margin,
			Hysteresis: pp.Hysteresis,
			Cooldown:   pp.Cooldown,
		},
	}
}

// LoadFile reads a JSON options file over the defaults. Unknown fields are
// rejected (a typoed knob must not silently fall back to its default), and
// the result is validated.
func LoadFile(path string) (Options, error) {
	opts := Default()
	f, err := os.Open(path)
	if err != nil {
		return opts, fmt.Errorf("opening config: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opts); err != nil {
		return opts, fmt.Errorf("parsing config %s: %w", path, err)
	}
	if err := opts.Validate(); err != nil {
		return opts, fmt.Errorf("config %s: %w", path, err)
	}
	return opts, nil
}

// knownKind reports whether k names a registered model family.
func knownKind(k string) bool {
	for _, kk := range model.Kinds() {
		if k == kk {
			return true
		}
	}
	return false
}

// Validate checks cross-field invariants. It does not touch the
// filesystem or the network — path and address fields are validated by
// whatever opens them.
func (o *Options) Validate() error {
	if o.Train.Count <= 0 && o.Train.Load == "" {
		return fmt.Errorf("train.count must be positive (or set train.load)")
	}
	if o.Serve.MaxBatch <= 0 || o.Serve.QueueCap <= 0 {
		return fmt.Errorf("serve.max_batch and serve.queue must be positive")
	}
	if o.Serve.Timeout <= 0 || o.Serve.DrainTimeout <= 0 {
		return fmt.Errorf("serve.timeout and serve.drain_timeout must be positive")
	}
	if o.Serve.Window < 0 {
		return fmt.Errorf("serve.window must be non-negative")
	}
	if o.Sliding.Capacity < 5 {
		return fmt.Errorf("sliding.capacity %d is below the training minimum of 5", o.Sliding.Capacity)
	}
	if o.Sliding.RetrainEvery <= 0 {
		return fmt.Errorf("sliding.retrain_every must be positive")
	}
	if o.Shards.Count < 0 {
		return fmt.Errorf("shards.count must be non-negative")
	}
	switch o.Shards.Partitioner {
	case "hash", "category":
	default:
		return fmt.Errorf("shards.partitioner %q is not hash or category", o.Shards.Partitioner)
	}
	switch o.State.Fsync {
	case "always", "batch", "none":
	default:
		return fmt.Errorf("state.fsync %q is not always, batch, or none", o.State.Fsync)
	}
	if o.State.FsyncEvery <= 0 || o.State.SnapshotEvery <= 0 {
		return fmt.Errorf("state.fsync_every and state.snapshot_every must be positive")
	}
	if !knownKind(o.Champion.Kind) {
		return fmt.Errorf("champion.kind %q is not one of %v", o.Champion.Kind, model.Kinds())
	}
	for _, k := range o.Champion.Challengers {
		if !knownKind(k) {
			return fmt.Errorf("champion.challengers entry %q is not one of %v", k, model.Kinds())
		}
	}
	if o.Champion.Margin < 0 || o.Champion.Margin >= 1 {
		return fmt.Errorf("champion.margin %g must be in [0, 1)", o.Champion.Margin)
	}
	if o.Champion.Window <= 0 || o.Champion.MinSamples <= 0 || o.Champion.Hysteresis <= 0 || o.Champion.Cooldown < 0 {
		return fmt.Errorf("champion.window, champion.min_samples, and champion.hysteresis must be positive (cooldown non-negative)")
	}
	return nil
}
