// Package qpredictclient is the Go client for the qpredictd prediction
// service (internal/serve, docs/API.md): a thin, dependency-free wrapper
// over the JSON wire API with connection reuse, request batching, and
// bounded retries.
//
//	c := qpredictclient.New("http://localhost:8080", nil)
//	res, err := c.PredictOne(ctx, "SELECT COUNT(*) FROM store_sales")
//
// Transient failures — 429 (a shard's queue is full) and 5xx — are retried
// with jittered exponential backoff, honoring the server's Retry-After
// hint; everything else (4xx, malformed bodies) fails immediately with an
// *APIError carrying the server's stable error code. A 503 whose code is
// shutting_down is final despite its retryable status: the daemon is
// draining and will not come back, so the client surfaces the error
// immediately instead of hammering a dying process. All calls respect
// context cancellation, including mid-backoff.
package qpredictclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// Options tune a Client. The zero value is ready to use.
type Options struct {
	// HTTPClient overrides the underlying transport. The default is a
	// dedicated http.Client with keep-alives (connection reuse) enabled —
	// shared by every call through this Client.
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try (default 3;
	// negative disables retries).
	MaxRetries int
	// BackoffBase is the first retry's nominal delay (default 100ms). Each
	// subsequent retry doubles it, capped at BackoffMax (default 2s), with
	// ±50% jitter. A server Retry-After overrides the computed delay when
	// it is longer.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter overrides the jitter source (tests); given the nominal delay
	// it returns the actual one. Default: nominal/2 + rand(nominal).
	Jitter func(d time.Duration) time.Duration
	// UserAgent overrides the User-Agent header (default "qpredictclient/1").
	UserAgent string
}

// APIError is a non-2xx response decoded from the wire: Code is the stable
// branchable cause (api.Code*), Status the HTTP status.
type APIError struct {
	Code    string
	Message string
	Status  int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("qpredictd: %s (%s, HTTP %d)", e.Message, e.Code, e.Status)
}

// Client talks to one qpredictd daemon. Safe for concurrent use; create
// with New.
type Client struct {
	base    string
	http    *http.Client
	opts    Options
	retries atomic.Int64

	mu  sync.Mutex
	rnd *rand.Rand
}

// New returns a client for the daemon at base (e.g. "http://localhost:8080").
// opts may be nil for defaults.
func New(base string, opts *Options) *Client {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.UserAgent == "" {
		o.UserAgent = "qpredictclient/1"
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return &Client{
		base: base,
		http: o.HTTPClient,
		opts: o,
		rnd:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Retries reports how many retry attempts this client has made — the
// observable proof that backoff engaged (used by the CI smoke test).
func (c *Client) Retries() int64 { return c.retries.Load() }

// Predict predicts a batch of SQL queries in one request. The returned
// results align one-to-one with sqls; per-query failures are reported in
// each result's Error field, whole-request failures in err.
func (c *Client) Predict(ctx context.Context, sqls ...string) (*api.PredictResponse, error) {
	if len(sqls) == 0 {
		return nil, errors.New("qpredictclient: no queries")
	}
	req := api.PredictRequest{Queries: make([]api.QueryInput, len(sqls))}
	for i, s := range sqls {
		req.Queries[i] = api.QueryInput{SQL: s}
	}
	var resp api.PredictResponse
	if err := c.do(ctx, http.MethodPost, "/v1/predict", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PredictOne predicts a single query, unwrapping the batch envelope. A
// per-query error comes back as an *APIError.
func (c *Client) PredictOne(ctx context.Context, sql string) (*api.QueryResult, error) {
	resp, err := c.Predict(ctx, sql)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != 1 {
		return nil, fmt.Errorf("qpredictclient: %d results for one query", len(resp.Results))
	}
	r := &resp.Results[0]
	if r.Error != nil {
		return nil, &APIError{Code: r.Error.Code, Message: r.Error.Message, Status: http.StatusOK}
	}
	return r, nil
}

// Observe feeds executed queries with their measured metrics into the
// daemon's retraining window. Note on retries: observe is not idempotent —
// if a retried request had been partially accepted before failing, the
// accepted prefix is enqueued again (harmless for the sliding window, which
// treats observations as a stream, but counts inflate).
func (c *Client) Observe(ctx context.Context, obs ...api.Observation) (*api.ObserveResponse, error) {
	if len(obs) == 0 {
		return nil, errors.New("qpredictclient: no observations")
	}
	var resp api.ObserveResponse
	if err := c.do(ctx, http.MethodPost, "/v1/observe", api.ObserveRequest{Observations: obs}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Model fetches the served model's metadata.
func (c *Client) Model(ctx context.Context) (*api.ModelInfo, error) {
	var resp struct {
		Model *api.ModelInfo `json:"model"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/model", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Model, nil
}

// Shards fetches the per-shard model state of a sharded daemon. An
// unsharded daemon answers with an *APIError (code bad_request).
func (c *Client) Shards(ctx context.Context) (*api.ShardsResponse, error) {
	var resp api.ShardsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/shards", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ready reports whether the daemon serves a model and is not draining.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("User-Agent", c.opts.UserAgent)
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, nil
}

// bodyBuf pairs a reusable request-encode buffer with a json.Encoder bound
// to it once, so steady-state calls reuse both the encoder state and the
// underlying bytes.
type bodyBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var bodyPool = sync.Pool{New: func() any {
	b := new(bodyBuf)
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// readPool recycles response-read buffers; json.Unmarshal copies everything
// it decodes, so the bytes are safe to reuse as soon as decoding finishes.
var readPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// retryable reports whether a status merits another attempt: 429 (shed
// load) and 5xx (transient server trouble). 4xx caller mistakes never
// retry.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// retryAfter parses a Retry-After header as delta-seconds or an HTTP date,
// returning 0 when absent or unparseable.
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// backoff computes the attempt'th retry delay: exponential from
// BackoffBase, capped at BackoffMax, jittered, and never shorter than the
// server's Retry-After hint.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	d := c.opts.BackoffBase << attempt
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	if c.opts.Jitter != nil {
		d = c.opts.Jitter(d)
	} else {
		c.mu.Lock()
		d = d/2 + time.Duration(c.rnd.Int63n(int64(d)))
		c.mu.Unlock()
	}
	if hint > d {
		d = hint
	}
	return d
}

// do runs one JSON round-trip with bounded retries. The request body is
// encoded once into a pooled buffer and replayed on each attempt (the
// buffer returns to the pool only when do exits, after the last replay);
// backoff sleeps abort on context cancellation.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		bb := bodyPool.Get().(*bodyBuf)
		bb.buf.Reset()
		if err := bb.enc.Encode(in); err != nil {
			bodyPool.Put(bb)
			return fmt.Errorf("qpredictclient: encoding request: %w", err)
		}
		body = bb.buf.Bytes()
		defer bodyPool.Put(bb)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		req.Header.Set("User-Agent", c.opts.UserAgent)
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		var hint time.Duration
		if err != nil {
			// Transport errors (refused, reset) retry like a 5xx; context
			// errors are final.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
		} else {
			rb := readPool.Get().(*bytes.Buffer)
			rb.Reset()
			_, rerr := rb.ReadFrom(io.LimitReader(resp.Body, 4<<20))
			resp.Body.Close()
			data := rb.Bytes()
			if resp.StatusCode/100 == 2 {
				if rerr != nil {
					readPool.Put(rb)
					return fmt.Errorf("qpredictclient: reading response: %w", rerr)
				}
				if out == nil {
					readPool.Put(rb)
					return nil
				}
				err := json.Unmarshal(data, out)
				readPool.Put(rb)
				return err
			}
			apiErr := &APIError{Code: api.CodeInternal, Status: resp.StatusCode}
			var wire api.ErrorResponse
			if json.Unmarshal(data, &wire) == nil && wire.Error.Code != "" {
				apiErr.Code = wire.Error.Code
				apiErr.Message = wire.Error.Message
			} else {
				apiErr.Message = http.StatusText(resp.StatusCode)
			}
			readPool.Put(rb)
			if !retryable(resp.StatusCode) {
				return apiErr
			}
			// A draining server reports shutting_down until the listener
			// stops: the condition is terminal for that process, so retrying
			// against it only delays the caller's failover.
			if apiErr.Code == api.CodeShuttingDown {
				return apiErr
			}
			lastErr = apiErr
			hint = retryAfter(resp.Header)
		}
		if attempt >= c.opts.MaxRetries {
			return lastErr
		}
		c.retries.Add(1)
		t := time.NewTimer(c.backoff(attempt, hint))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
}
