package qpredictclient

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
)

// Wire-format compatibility: the client must decode both pre-zoo daemons
// (no model_kind, no champion/challenger blocks) and current ones. The
// fixtures below are captured response bodies, not round-tripped structs —
// they pin the actual bytes an old daemon sends.

// preZooModelJSON is a /v1/model body from a daemon predating the model
// zoo: no model_kind, champion, or challengers keys.
const preZooModelJSON = `{
  "version": "v1",
  "model": {
    "generation": 3,
    "trained_on": 500,
    "features": "plan+text",
    "two_step": true,
    "swaps": 2,
    "window_size": 480,
    "index": {"kind": "kdtree", "metric": "elapsed_time", "points": 500, "nodes": 999, "min_points": 64}
  }
}`

// preZooPredictJSON is a /v1/predict body from the same era: results carry
// no model_kind.
const preZooPredictJSON = `{
  "version": "v1",
  "model": {"generation": 3, "trained_on": 500, "features": "plan+text", "two_step": true, "swaps": 2},
  "results": [
    {"sql": "SELECT 1", "metrics": {"elapsed_time": 1.5, "records_accessed": 10, "records_used": 5, "disk_ios": 2, "message_count": 0, "message_bytes": 0}, "category": "feather", "confidence": 0.9, "generation": 3}
  ]
}`

// zooModelJSON is a current /v1/model body with the zoo blocks populated.
const zooModelJSON = `{
  "version": "v1",
  "model": {
    "generation": 7,
    "trained_on": 500,
    "features": "plan+text",
    "two_step": true,
    "swaps": 6,
    "model_kind": "kcca",
    "champion": {"kind": "kcca", "promotions": 1, "since_generation": 5},
    "challengers": [
      {"kind": "kcca", "champion": true},
      {"kind": "optcost", "streak": 2, "categories": [
        {"category": "feather", "samples": 40, "mean_rel_err": 0.31, "within_20": 0.4}
      ]}
    ]
  }
}`

func serveBody(t *testing.T, body string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(body))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestDecodePreZooModel(t *testing.T) {
	ts := serveBody(t, preZooModelJSON)
	info, err := New(ts.URL, fastOpts()).Model(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 3 || info.TrainedOn != 500 || !info.TwoStep {
		t.Fatalf("core fields lost decoding a pre-zoo body: %+v", info)
	}
	if info.ModelKind != "" || info.Champion != nil || info.Challengers != nil {
		t.Fatalf("zoo fields invented from a pre-zoo body: %+v", info)
	}
	if info.Index == nil || info.Index.Points != 500 {
		t.Fatalf("index info lost: %+v", info.Index)
	}
}

func TestDecodePreZooPredict(t *testing.T) {
	ts := serveBody(t, preZooPredictJSON)
	res, err := New(ts.URL, fastOpts()).PredictOne(context.Background(), "SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil || res.Metrics.ElapsedSec != 1.5 || res.Category != "feather" {
		t.Fatalf("core fields lost decoding a pre-zoo result: %+v", res)
	}
	if res.ModelKind != "" {
		t.Fatalf("model_kind invented from a pre-zoo result: %q", res.ModelKind)
	}
}

func TestDecodeZooModel(t *testing.T) {
	ts := serveBody(t, zooModelJSON)
	info, err := New(ts.URL, fastOpts()).Model(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.ModelKind != "kcca" {
		t.Fatalf("model_kind %q, want kcca", info.ModelKind)
	}
	ch := info.Champion
	if ch == nil || ch.Kind != "kcca" || ch.Promotions != 1 || ch.SinceGeneration != 5 {
		t.Fatalf("champion block wrong: %+v", ch)
	}
	if len(info.Challengers) != 2 {
		t.Fatalf("challengers %+v, want 2", info.Challengers)
	}
	if !info.Challengers[0].Champion || info.Challengers[0].Kind != "kcca" {
		t.Fatalf("champion row wrong: %+v", info.Challengers[0])
	}
	oc := info.Challengers[1]
	if oc.Kind != "optcost" || oc.Streak != 2 || len(oc.Categories) != 1 {
		t.Fatalf("challenger row wrong: %+v", oc)
	}
	cs := oc.Categories[0]
	if cs.Category != "feather" || cs.Samples != 40 || cs.MeanRelErr != 0.31 || cs.Within20 != 0.4 {
		t.Fatalf("category score wrong: %+v", cs)
	}
}

// TestZooFieldsOmittedWhenEmpty: a server encoding a zoo-less ModelInfo
// with the current structs emits no zoo keys — old clients parsing with
// strict schemas keep working.
func TestZooFieldsOmittedWhenEmpty(t *testing.T) {
	b, err := json.Marshal(api.ModelInfo{Generation: 1, TrainedOn: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"model_kind", "champion", "challengers"} {
		if bytes.Contains(b, []byte(`"`+key+`"`)) {
			t.Fatalf("empty zoo field %q serialized: %s", key, b)
		}
	}
}
