package qpredictclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// fastOpts returns options with near-zero backoff so retry tests run in
// milliseconds.
func fastOpts() *Options {
	return &Options{
		MaxRetries: 3,
		Jitter:     func(time.Duration) time.Duration { return time.Millisecond },
	}
}

// predictEcho answers any predict request with one OK result per query.
func predictEcho(w http.ResponseWriter, r *http.Request) {
	var req api.PredictRequest
	json.NewDecoder(r.Body).Decode(&req)
	resp := api.PredictResponse{Version: api.Version}
	for _, in := range req.Inputs() {
		m := api.Metrics{ElapsedSec: float64(len(in.SQL))}
		resp.Results = append(resp.Results, api.QueryResult{SQL: in.SQL, Metrics: &m, Category: "feather"})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func errorBody(w http.ResponseWriter, status int, code string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(api.ErrorResponse{Version: api.Version, Error: api.Error{Code: code, Message: code}})
}

func TestRetryOn429ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			errorBody(w, http.StatusTooManyRequests, api.CodeOverloaded)
			return
		}
		predictEcho(w, r)
	}))
	defer ts.Close()

	c := New(ts.URL, fastOpts())
	res, err := c.PredictOne(context.Background(), "SELECT 1")
	if err != nil {
		t.Fatalf("predict after retries: %v", err)
	}
	if res.SQL != "SELECT 1" || res.Metrics == nil {
		t.Fatalf("bad result %+v", res)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3 (two 429s + success)", got)
	}
	if got := c.Retries(); got != 2 {
		t.Errorf("client retries %d, want 2", got)
	}
}

func TestRetryOn5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			errorBody(w, http.StatusInternalServerError, api.CodeInternal)
			return
		}
		predictEcho(w, r)
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	if _, err := c.Predict(context.Background(), "SELECT 1"); err != nil {
		t.Fatalf("predict after 500 retry: %v", err)
	}
	if c.Retries() != 1 {
		t.Errorf("retries %d, want 1", c.Retries())
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		errorBody(w, http.StatusBadRequest, api.CodeParse)
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	_, err := c.Predict(context.Background(), "SELEC")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeParse || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError{parse_error, 400}", err)
	}
	if calls.Load() != 1 || c.Retries() != 0 {
		t.Errorf("calls %d retries %d; caller mistakes must not retry", calls.Load(), c.Retries())
	}
}

func TestRetriesExhausted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		errorBody(w, http.StatusTooManyRequests, api.CodeOverloaded)
	}))
	defer ts.Close()
	opts := fastOpts()
	opts.MaxRetries = 2
	c := New(ts.URL, opts)
	_, err := c.Predict(context.Background(), "SELECT 1")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeOverloaded {
		t.Fatalf("err = %v, want the final overloaded APIError", err)
	}
	if c.Retries() != 2 {
		t.Errorf("retries %d, want MaxRetries=2", c.Retries())
	}
}

// TestNoRetryOnShuttingDown: 503s are retryable in general, but a server
// that reports shutting_down is draining — it will not come back on this
// address, and hammering it slows the drain. The client must give up after
// the first response.
func TestNoRetryOnShuttingDown(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		errorBody(w, http.StatusServiceUnavailable, api.CodeShuttingDown)
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	_, err := c.Predict(context.Background(), "SELECT 1")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeShuttingDown {
		t.Fatalf("err = %v, want APIError{shutting_down}", err)
	}
	if calls.Load() != 1 || c.Retries() != 0 {
		t.Errorf("calls %d retries %d; a draining server must not be retried", calls.Load(), c.Retries())
	}
}

func TestRetryAfterParsing(t *testing.T) {
	h := http.Header{}
	if d := retryAfter(h); d != 0 {
		t.Errorf("absent header: %v, want 0", d)
	}
	h.Set("Retry-After", "2")
	if d := retryAfter(h); d != 2*time.Second {
		t.Errorf("delta-seconds: %v, want 2s", d)
	}
	h.Set("Retry-After", time.Now().Add(3*time.Second).UTC().Format(http.TimeFormat))
	if d := retryAfter(h); d <= 0 || d > 3*time.Second {
		t.Errorf("http-date: %v, want ~3s", d)
	}
	h.Set("Retry-After", "garbage")
	if d := retryAfter(h); d != 0 {
		t.Errorf("garbage: %v, want 0", d)
	}
}

func TestBackoffHonorsHintAndCap(t *testing.T) {
	c := New("http://x", &Options{
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  80 * time.Millisecond,
		Jitter:      func(d time.Duration) time.Duration { return d },
	})
	if d := c.backoff(0, 0); d != 10*time.Millisecond {
		t.Errorf("attempt 0: %v, want base", d)
	}
	if d := c.backoff(2, 0); d != 40*time.Millisecond {
		t.Errorf("attempt 2: %v, want 4×base", d)
	}
	if d := c.backoff(10, 0); d != 80*time.Millisecond {
		t.Errorf("attempt 10: %v, want the cap", d)
	}
	if d := c.backoff(0, time.Second); d != time.Second {
		t.Errorf("with server hint: %v, want the hint to win", d)
	}
}

func TestContextCancelsBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		errorBody(w, http.StatusTooManyRequests, api.CodeOverloaded)
	}))
	defer ts.Close()
	c := New(ts.URL, &Options{
		MaxRetries: 3,
		Jitter:     func(time.Duration) time.Duration { return 30 * time.Second },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Predict(ctx, "SELECT 1")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep must abort on ctx", elapsed)
	}
}

func TestPredictOnePerQueryError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp := api.PredictResponse{Version: api.Version, Results: []api.QueryResult{
			{SQL: "SELEC", Error: &api.Error{Code: api.CodeParse, Message: "no"}},
		}}
		json.NewEncoder(w).Encode(resp)
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	_, err := c.PredictOne(context.Background(), "SELEC")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeParse {
		t.Fatalf("err = %v, want per-query parse APIError", err)
	}
}

func TestBatcherCoalescesAndAligns(t *testing.T) {
	var requests atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		predictEcho(w, r)
	}))
	defer ts.Close()
	c := New(ts.URL, fastOpts())
	b := NewBatcher(c, 20*time.Millisecond, 64)
	defer b.Close()

	const n = 24
	var wg sync.WaitGroup
	errs := make([]error, n)
	got := make([]*api.QueryResult, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sql := "SELECT " + string(rune('a'+i))
			res, err := b.Predict(context.Background(), sql)
			errs[i], got[i] = err, res
			if err == nil && res.SQL != sql {
				errs[i] = errors.New("got someone else's result: " + res.SQL)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
		if got[i] == nil || got[i].Metrics == nil {
			t.Fatalf("caller %d: incomplete result", i)
		}
	}
	if r := requests.Load(); r >= n {
		t.Errorf("%d wire requests for %d callers; batcher did not coalesce", r, n)
	}
	if _, err := b.Predict(context.Background(), "x"); err != nil {
		t.Fatalf("batcher broken after burst: %v", err)
	}
	b.Close()
	if _, err := b.Predict(context.Background(), "x"); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("predict after close: %v, want ErrBatcherClosed", err)
	}
}
