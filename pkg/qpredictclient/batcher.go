package qpredictclient

import (
	"context"
	"errors"
	"time"

	"repro/internal/api"
)

// ErrBatcherClosed is returned by Batcher.Predict after Close.
var ErrBatcherClosed = errors.New("qpredictclient: batcher is closed")

// pending is one caller waiting inside an open client-side batch.
type pending struct {
	sql  string
	res  *api.QueryResult
	err  error
	done chan struct{}
}

// Batcher coalesces concurrent single-query predictions into batched wire
// requests — the client-side mirror of the daemon's micro-batch coalescer.
// Callers each see their own result (or error); a whole-request failure
// fans back to every caller in the batch. Create with NewBatcher, release
// with Close.
type Batcher struct {
	c        *Client
	window   time.Duration
	maxBatch int
	in       chan *pending
	closed   chan struct{}
	done     chan struct{}
}

// NewBatcher starts a batcher over c: the first arrival opens a batch,
// which is flushed after window (default 2ms) or at maxBatch queries
// (default 64, capped by the server's per-request limit), whichever comes
// first.
func NewBatcher(c *Client, window time.Duration, maxBatch int) *Batcher {
	if window <= 0 {
		window = 2 * time.Millisecond
	}
	if maxBatch <= 0 {
		maxBatch = 64
	}
	b := &Batcher{
		c:        c,
		window:   window,
		maxBatch: maxBatch,
		in:       make(chan *pending),
		closed:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	go b.loop()
	return b
}

// Predict queues one query into the current batch and waits for its slot of
// the batched response. The context bounds only this caller's wait; the
// flushed wire request itself runs on the batcher's own context so one
// impatient caller cannot void its batch-mates.
func (b *Batcher) Predict(ctx context.Context, sql string) (*api.QueryResult, error) {
	p := &pending{sql: sql, done: make(chan struct{})}
	select {
	case b.in <- p:
	case <-b.closed:
		return nil, ErrBatcherClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case <-p.done:
		return p.res, p.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close flushes the open batch and stops the background loop.
func (b *Batcher) Close() {
	select {
	case <-b.closed:
		return
	default:
	}
	close(b.closed)
	<-b.done
}

func (b *Batcher) loop() {
	defer close(b.done)
	for {
		var first *pending
		select {
		case first = <-b.in:
		case <-b.closed:
			return
		}
		batch := []*pending{first}
		timer := time.NewTimer(b.window)
	gather:
		for len(batch) < b.maxBatch {
			select {
			case p := <-b.in:
				batch = append(batch, p)
			case <-timer.C:
				break gather
			case <-b.closed:
				break gather
			}
		}
		timer.Stop()
		b.flush(batch)
	}
}

// flush sends one batched request and fans the aligned results back out.
func (b *Batcher) flush(batch []*pending) {
	sqls := make([]string, len(batch))
	for i, p := range batch {
		sqls[i] = p.sql
	}
	resp, err := b.c.Predict(context.Background(), sqls...)
	for i, p := range batch {
		switch {
		case err != nil:
			p.err = err
		case i >= len(resp.Results):
			p.err = errors.New("qpredictclient: short batch response")
		case resp.Results[i].Error != nil:
			e := resp.Results[i].Error
			p.err = &APIError{Code: e.Code, Message: e.Message, Status: 200}
		default:
			p.res = &resp.Results[i]
		}
		close(p.done)
	}
}
