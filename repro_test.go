package repro_test

import (
	"testing"

	"repro"
	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/exec"
	"repro/internal/workload"
)

// TestPublicAPIEndToEnd exercises the root package's re-exported surface
// the way the README shows it.
func TestPublicAPIEndToEnd(t *testing.T) {
	pool, err := dataset.Generate(dataset.GenConfig{
		Seed: 7, DataSeed: 1000,
		Machine:   repro.Research4(),
		Schema:    catalog.TPCDS(1),
		Templates: workload.TPCDSTemplates(),
		Count:     120,
	})
	if err != nil {
		t.Fatal(err)
	}
	train := pool.Queries[:100]
	test := pool.Queries[100:]

	predictor, err := repro.Train(train, repro.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if predictor.N() != 100 {
		t.Errorf("N = %d", predictor.N())
	}
	for _, q := range test {
		pred, err := predictor.PredictQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Metrics.ElapsedSec <= 0 {
			t.Errorf("nonpositive prediction for %s", q.Template)
		}
		if pred.Category < repro.Feather || pred.Category > repro.WreckingBall {
			t.Errorf("category out of range: %v", pred.Category)
		}
	}
}

// TestPublicAPITypesAlias verifies the aliases point at the real types.
func TestPublicAPITypesAlias(t *testing.T) {
	var m repro.Metrics = exec.Metrics{ElapsedSec: 1}
	if m.ElapsedSec != 1 {
		t.Error("Metrics alias broken")
	}
	var c repro.Category = workload.GolfBall
	if c.String() != "golf_ball" {
		t.Error("Category alias broken")
	}
	if repro.Production32(8).Processors != 8 {
		t.Error("Production32 wrapper broken")
	}
	opt := repro.DefaultOptions()
	if opt.Features != repro.PlanFeatures {
		t.Error("default options should use plan features")
	}
	if repro.SQLFeatures.String() != "sql-text" {
		t.Error("SQLFeatures alias broken")
	}
}
